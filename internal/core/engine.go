// Package core is the SciQL engine: it ties the parser, binder, MAL
// compiler/interpreter and storage kernel into a database with sessions,
// transactions and persistence. It is the public API of the library; the
// root package re-exports it.
package core

import (
	"context"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/rel"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// DB is a SciQL database: a catalog of tables and arrays plus the engine
// state.
//
// Statement execution is split into two paths. Reads (SELECT, EXPLAIN,
// PLAN) run lock-free against the last published catalog snapshot, so any
// number of concurrent readers execute truly in parallel with each other
// and with the writer. Writes (DDL, DML, transaction control) keep
// single-writer semantics under mu: each mutating statement executes
// against the live catalog and then publishes a fresh copy-on-write
// snapshot, so readers always observe statement-atomic (and, inside
// explicit transactions, commit-atomic) state — snapshot isolation.
type DB struct {
	// mu is the writer lock: held exclusively for every mutating
	// statement (and briefly, shared, by readers to route against the
	// transaction state). The published snapshot is what lets readers
	// drop the lock before executing.
	mu  sync.RWMutex
	cat *catalog.Catalog // live catalog, mutated only under mu
	dir string           // persistence directory; empty = in-memory

	// view is the published immutable snapshot readers execute against.
	// Objects in it are frozen (catalog.Table.Freeze): their storage is
	// never mutated in place once published.
	view atomic.Pointer[catalog.Catalog]

	// dirty names the objects mutated since the last publication; the
	// next publish re-freezes exactly these (copy-on-write granularity).
	dirty map[string]struct{}

	// wal is the write-ahead log of a directory-backed database (nil for
	// in-memory). Committed write statements queue encoded effect records
	// in walPending; the autocommit boundary or COMMIT appends them as one
	// fsynced batch, ROLLBACK drops them. ckptDirty maps objects that
	// diverged from the last checkpoint to whether their segment *data*
	// changed (true) or only manifest-level state like a table's deletion
	// mask (false): a checkpoint rewrites segments only for data-dirty
	// objects, so a DELETE-heavy workload does not reintroduce O(table)
	// write amplification. Once the log outgrows ckptBytes (<= 0 disables
	// the trigger) a checkpoint folds it into versioned segment files and
	// resets it.
	wal         *wal.Log
	walGen      uint64
	walPending  [][]byte
	ckptDirty   map[string]bool
	ckptBytes   int64
	ckptWritten int64 // segment bytes written by checkpoints (accounting)

	// fs is the filesystem every durability-bearing operation (WAL,
	// segments, manifest) goes through: vfs.OS in production, a failpoint
	// implementation in the fault-injection suites.
	fs vfs.FS

	// degraded, when non-nil, is the cause that latched read-only
	// degraded mode: a WAL append/reset or checkpoint failure left the
	// in-memory state and the disk (possibly) diverged, so further writes
	// are refused (reads keep working) rather than compounding the
	// divergence into silent data loss or an unreplayable log. See
	// degraded.go; a successful Save or a reopen recovers.
	degraded error

	// readOnly, when non-empty, is the reason SQL writes are refused by
	// policy (the -read-only flag); unlike degraded it is not a fault and
	// never clears on Save. replica additionally marks the database as a
	// replication target: SQL writes are refused, checkpoints are
	// disabled (a checkpoint would reset the log generation and break the
	// byte-identity with the primary's log), and the only mutation path
	// is ApplyReplicated/InstallSnapshot, until Promote opens the write
	// path. See repl.go.
	readOnly string
	replica  bool

	// Group commit state (commit.go): commitQ is the queue between
	// committers and the loop goroutine (nil = serialized commits),
	// commitGroup the max batches coalesced per fsync, commitDone the
	// loop's exit signal. pendingCommit/pendingMsg thread a commit
	// request from a nested boundary (txnStmt's COMMIT, which runs under
	// mu) out to execStmtCtx, which waits on it after unlocking.
	// commits/syncsRetired are the CommitStats accounting.
	commitQ       *commitQueue
	commitGroup   int
	commitDone    chan struct{}
	pendingCommit *commitReq
	pendingMsg    string
	commits       int64
	syncsRetired  int64

	// modSeq is the database-wide modification sequence feeding every
	// catalog object's Mod stamp (see stampMod in txn.go); mutated only
	// under mu.
	modSeq uint64

	txn      *txn     // open explicit transaction, nil in autocommit
	txnOwner *Session // session holding the open transaction

	session *Session // default session used by the DB-level Exec/Query

	pcache *parseCache // bounded LRU of parsed statements, purged on DDL
}

// DefaultCheckpointBytes is the WAL size past which a commit triggers an
// incremental checkpoint when no explicit threshold is configured.
const DefaultCheckpointBytes = 4 << 20

// New creates an empty in-memory database.
func New() *DB {
	db := &DB{cat: catalog.New(), dirty: map[string]struct{}{}, pcache: newParseCache(),
		ckptDirty: map[string]bool{}, fs: vfs.OS}
	db.session = &Session{db: db}
	db.view.Store(catalog.New())
	return db
}

// Open loads (or initialises) a database persisted in dir: it reads the
// last checkpoint manifest and its BAT segments, then replays the
// write-ahead log tail — committed work a crash or exit-without-Close
// left out of the segment store — discarding any torn trailing records.
func Open(dir string) (*DB, error) {
	return OpenWith(dir, DefaultCheckpointBytes)
}

// OpenWith is Open with an explicit WAL checkpoint threshold (see
// SetWALCheckpointBytes; <= 0 disables automatic checkpoints). Unlike
// SetWALCheckpointBytes after Open, the threshold also governs whether
// an oversized recovered log is folded during the open itself.
func OpenWith(dir string, walCheckpointBytes int64) (*DB, error) {
	return OpenWithFS(dir, walCheckpointBytes, vfs.OS)
}

// OpenWithFS is OpenWith on an explicit filesystem. The fault-injection
// and chaos suites use it to make fsyncs, renames and segment writes
// fail on demand; production callers never need it.
func OpenWithFS(dir string, walCheckpointBytes int64, fsys vfs.FS) (*DB, error) {
	return OpenDB(dir, OpenOptions{CheckpointBytes: walCheckpointBytes, FS: fsys})
}

// OpenOptions configures OpenDB beyond the directory.
type OpenOptions struct {
	// CheckpointBytes is the WAL size past which a commit triggers an
	// incremental checkpoint (0 means DefaultCheckpointBytes via Open;
	// here 0 disables the trigger, matching OpenWith semantics).
	CheckpointBytes int64
	// FS overrides the filesystem (fault injection); nil means vfs.OS.
	FS vfs.FS
	// ReadOnly, when non-empty, refuses every SQL write with ErrReadOnly
	// carrying this reason, and skips all checkpoints (including the
	// final one on Close) so the mode truly never writes the store.
	ReadOnly string
	// Replica additionally opens the database as a replication target:
	// read-only to SQL, checkpoints disabled, mutated only through
	// ApplyReplicated/InstallSnapshot until Promote.
	Replica bool
	// CommitQueue configures group commit for directory-backed writable
	// databases: the maximum number of commit batches coalesced into one
	// WAL fsync. 0 means DefaultCommitQueue (group commit is on by
	// default); negative disables the pipeline entirely, restoring the
	// serialized one-fsync-per-commit path (the N-writer benchmark's
	// baseline).
	CommitQueue int
}

// OpenDB is the fully general open: directory plus options. The plain
// Open/OpenWith wrappers cover the common cases.
func OpenDB(dir string, o OpenOptions) (*DB, error) {
	fsys := o.FS
	if fsys == nil {
		fsys = vfs.OS
	}
	readOnly := o.ReadOnly
	if o.Replica && readOnly == "" {
		readOnly = replicaReadOnlyReason
	}
	group := o.CommitQueue
	if group == 0 {
		group = DefaultCommitQueue
	}
	if group < 0 {
		group = 0 // serialized commits
	}
	db := &DB{cat: catalog.New(), dir: dir, dirty: map[string]struct{}{}, pcache: newParseCache(),
		ckptDirty: map[string]bool{}, ckptBytes: o.CheckpointBytes, fs: fsys,
		readOnly: readOnly, replica: o.Replica, commitGroup: group}
	db.session = &Session{db: db}
	if err := db.checkBootstrapMarker(); err != nil {
		return nil, err
	}
	if err := db.load(); err != nil {
		return nil, err
	}
	if err := db.recoverWAL(); err != nil {
		return nil, err
	}
	// Publish the recovered state as the first snapshot.
	for _, n := range db.cat.TableNames() {
		db.dirty[n] = struct{}{}
	}
	for _, n := range db.cat.ArrayNames() {
		db.dirty[n] = struct{}{}
	}
	db.view.Store(catalog.New())
	db.publishLocked()
	// A recovered log past the threshold is folded immediately so the
	// next open does not pay the same replay again. Read-only and
	// replica opens never checkpoint (maybeCheckpointLocked refuses).
	if err := db.maybeCheckpointLocked(); err != nil {
		if db.wal != nil {
			_ = db.wal.Close()
		}
		return nil, err
	}
	// Start the group-commit pipeline last, once recovery and the
	// opening checkpoint are done: from here on, commits and checkpoints
	// belong to the loop. Read-only and replica opens stay serialized
	// (their only mutation paths bypass the commit boundary; Promote
	// starts the loop when it opens the write path).
	if db.readOnly == "" && !db.replica {
		db.startCommitLoopLocked()
	}
	return db, nil
}

// SetWALCheckpointBytes sets the WAL size past which a commit triggers an
// incremental checkpoint. n <= 0 disables the automatic trigger (the
// final checkpoint on Close still runs). Returns the previous threshold.
func (db *DB) SetWALCheckpointBytes(n int64) int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	prev := db.ckptBytes
	db.ckptBytes = n
	return prev
}

// CheckIntegrity validates the structural invariants of the live catalog:
// every column of a table holds the same row count, deletion masks fit
// the physical row count, and array attribute/dimension BATs are aligned
// with the declared shape. Recovery tests and the WAL-replay fuzzer use
// it as the "no silent corruption" oracle after reopening a database.
func (db *DB) CheckIntegrity() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.checkIntegrityLocked()
}

// checkIntegrityLocked is CheckIntegrity under an already-held lock
// (promotion verifies the applied prefix while holding the writer lock).
func (db *DB) checkIntegrityLocked() error {
	for _, name := range db.cat.TableNames() {
		t, _ := db.cat.Table(name)
		if len(t.Bats) != len(t.Columns) {
			return fmt.Errorf("table %s: %d columns, %d BATs", name, len(t.Columns), len(t.Bats))
		}
		rows := t.PhysRows()
		for i, b := range t.Bats {
			if b.Len() != rows {
				return fmt.Errorf("table %s: column %s has %d rows, expected %d", name, t.Columns[i].Name, b.Len(), rows)
			}
		}
		if t.Deleted != nil && t.Deleted.Len() > rows {
			return fmt.Errorf("table %s: deletion mask covers %d rows, table has %d", name, t.Deleted.Len(), rows)
		}
	}
	for _, name := range db.cat.ArrayNames() {
		a, _ := db.cat.Array(name)
		cells := a.Cells()
		if len(a.AttrBats) != len(a.Attrs) {
			return fmt.Errorf("array %s: %d attributes, %d BATs", name, len(a.Attrs), len(a.AttrBats))
		}
		for i, b := range a.AttrBats {
			if b.Len() != cells {
				return fmt.Errorf("array %s: attribute %s has %d cells, shape has %d", name, a.Attrs[i].Name, b.Len(), cells)
			}
		}
		if len(a.DimBats) != len(a.Shape) {
			return fmt.Errorf("array %s: %d dimensions, %d dim BATs", name, len(a.Shape), len(a.DimBats))
		}
		for k, b := range a.DimBats {
			if b.Len() != cells {
				return fmt.Errorf("array %s: dimension %s has %d cells, shape has %d", name, a.Shape[k].Name, b.Len(), cells)
			}
		}
	}
	return nil
}

// Catalog exposes the live database catalog (read-mostly; used by tools).
// It is not synchronised against concurrent writers beyond its own map
// locks; concurrent readers should prefer Snapshot.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Snapshot returns the last published immutable catalog snapshot: the
// state every new read statement observes. Safe for concurrent use.
func (db *DB) Snapshot() *catalog.Catalog { return db.view.Load() }

// Close releases the database. A directory-backed database flushes a
// final checkpoint — folding the WAL tail into the segment store so the
// log does not grow across restarts — and closes the log. An open
// transaction is rolled back.
func (db *DB) Close() error {
	// Stop the commit loop before taking the lock for the final
	// checkpoint: the loop drains and acks every queued commit on the
	// way out, and it needs db.mu itself to run checkpoint barriers.
	db.stopCommitLoop()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn != nil {
		db.txn.rollback(db)
		db.txn = nil
		db.txnOwner = nil
		db.discardWALPending()
		db.publishLocked()
	}
	if db.dir == "" {
		return nil
	}
	var ckptErr error
	// A read-only or replica database never writes checkpoints — its WAL
	// tail simply replays again on the next open (and a replica's log
	// must stay a byte prefix of its primary's).
	if db.readOnly == "" && !db.replica {
		ckptErr = db.checkpointLocked()
	}
	// Release the log handle even when the final fold fails: the
	// committed records are already durable in it and will replay on the
	// next Open.
	if db.wal != nil {
		closeErr := db.wal.Close()
		db.wal = nil
		if ckptErr == nil {
			ckptErr = closeErr
		}
	}
	return ckptErr
}

// Exec parses and executes a semicolon-separated batch on the default
// session, returning one result per statement. Repeated batches skip the
// parser via the DB's statement cache. Safe for concurrent use; reads run
// in parallel, writes serialise.
func (db *DB) Exec(query string) ([]*Result, error) { return db.session.Exec(query) }

// ExecContext is Exec under a context: cancelling ctx (or its deadline
// expiring) aborts the batch between statements, between MAL
// instructions, and — for kernels on large inputs — at morsel
// granularity mid-kernel. The returned error is ctx.Err() when the
// context caused the abort.
func (db *DB) ExecContext(ctx context.Context, query string) ([]*Result, error) {
	return db.session.ExecContext(ctx, query)
}

// Query executes exactly one statement on the default session and returns
// its result. Repeated statements skip the parser via the DB's statement
// cache. Safe for concurrent use.
func (db *DB) Query(query string) (*Result, error) { return db.session.Query(query) }

// QueryContext is Query under a context (see ExecContext for the
// cancellation semantics).
func (db *DB) QueryContext(ctx context.Context, query string) (*Result, error) {
	return db.session.QueryContext(ctx, query)
}

// MustQuery executes a statement and panics on error (testing/examples).
func (db *DB) MustQuery(query string) *Result {
	r, err := db.Query(query)
	if err != nil {
		panic(fmt.Sprintf("query %q: %v", query, err))
	}
	return r
}

// ExecStmt executes one parsed statement on the default session.
func (db *DB) ExecStmt(stmt ast.Statement) (*Result, error) {
	return db.execStmt(db.session, stmt)
}

// parse resolves a query text to parsed statements through the cache,
// keyed by text plus the join-order mode (see parseCache).
func (db *DB) parse(query string) ([]ast.Statement, error) {
	key := cacheKey(query)
	if stmts, ok := db.pcache.get(key); ok {
		return stmts, nil
	}
	stmts, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	db.pcache.put(key, stmts)
	return stmts, nil
}

// execStmt routes one statement for a session: reads execute lock-free
// against the published snapshot unless the session holds the open
// transaction (read-your-writes); everything else takes the writer lock.
func (db *DB) execStmt(s *Session, stmt ast.Statement) (*Result, error) {
	return db.execStmtCtx(context.Background(), s, stmt)
}

// execStmtCtx is execStmt under a context, and the engine's panic
// containment boundary: a panicking kernel (or interpreter bug) is
// converted into an error instead of tearing down the process. The
// recovery is sound because statement execution never leaves shared
// state inconsistent at a panic point — reads run against an immutable
// snapshot, and a write that panics mid-statement is in the same
// position as a write that errors mid-statement (partial effects,
// logged as applied), which the engine already tolerates. The writer
// lock, when held, is released by its own defer during unwinding.
func (db *DB) execStmtCtx(ctx context.Context, s *Session, stmt ast.Statement) (res *Result, err error) {
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	defer func() {
		if r := recover(); r != nil {
			log.Printf("sciql: query panic (answered as error): %v\n%s", r, debug.Stack())
			res = nil
			err = fmt.Errorf("internal error: query execution panicked: %v", r)
		}
	}()
	switch stmt.(type) {
	case *ast.Select, *ast.Explain:
		db.mu.RLock()
		inTxn := db.txn != nil && db.txnOwner == s
		snap := db.view.Load()
		db.mu.RUnlock()
		if !inTxn {
			return db.execRead(ctx, snap, stmt)
		}
	case *ast.Insert, *ast.Update, *ast.Delete:
		// Parallel prepare (optimistic.go): plan the statement against
		// the published snapshot outside the writer lock, hold the lock
		// only for first-committer-wins validation + apply + enqueue.
		// ok=false (ineligible shape, open transaction, conflict storm,
		// prepare error) falls through to the serialized path below.
		if r, req, ok, oerr := db.execOptimistic(stmt); ok {
			if req != nil {
				if werr := <-req.done; werr != nil && oerr == nil {
					oerr = werr
				}
			}
			return r, oerr
		}
	}
	r, req, msg, err := db.execWrite(ctx, s, stmt)
	// With group commit, the writer lock is already released: block here
	// until the loop has fsynced the batch (or failed the whole group).
	// Holding db.mu across this wait would serialise exactly the fsyncs
	// the pipeline exists to share.
	if req != nil {
		if werr := <-req.done; werr != nil && err == nil {
			if msg != "" {
				err = fmt.Errorf("%s: %v", msg, werr)
			} else {
				err = werr
			}
		}
	}
	return r, err
}

// execWrite runs one statement under the writer lock and returns the
// commit request (if any) the caller must wait on after the lock is
// released, plus an optional message to wrap a durability error with
// (COMMIT's "committed but not persisted" contract).
func (db *DB) execWrite(ctx context.Context, s *Session, stmt ast.Statement) (*Result, *commitReq, string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn != nil && db.txnOwner != s {
		return nil, nil, "", fmt.Errorf("another session holds an open transaction; writes are blocked until it commits or rolls back")
	}
	if werr := db.writeBlockedErr(); werr != nil && isWriteStmt(stmt) {
		return nil, nil, "", werr
	}
	r, err := db.execLocked(ctx, s, stmt)
	// Autocommit boundary: make the statement durable (one fsynced WAL
	// batch; partial effects of a failed statement are logged exactly as
	// applied) and publish it statement-atomically. Inside an explicit
	// transaction both wait for COMMIT, so concurrent readers never
	// observe uncommitted state and rolled-back work never hits the log.
	if db.txn != nil {
		return r, nil, "", err
	}
	if req, msg := db.takePendingCommitLocked(); req != nil {
		// txnStmt's COMMIT already ran the boundary and registered the
		// request to wait on.
		return r, req, msg, err
	}
	req, berr := db.commitBoundaryLocked()
	if berr != nil && err == nil {
		err = berr
	}
	return r, req, "", err
}

// isWriteStmt reports whether a statement mutates the database.
func isWriteStmt(stmt ast.Statement) bool {
	switch stmt.(type) {
	case *ast.Select, *ast.Explain:
		return false
	}
	return true
}

// execRead executes a read-only statement against an immutable snapshot.
// It runs without any engine lock: the snapshot's storage is frozen.
func (db *DB) execRead(ctx context.Context, cat *catalog.Catalog, stmt ast.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *ast.Select:
		return db.runSelect(ctx, cat, s)
	case *ast.Explain:
		return db.explain(cat, s)
	default:
		return nil, fmt.Errorf("unsupported read statement %T", stmt)
	}
}

func (db *DB) execLocked(ctx context.Context, s *Session, stmt ast.Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *ast.Select:
		return db.runSelect(ctx, db.cat, st)
	case *ast.CreateTable:
		db.pcache.purge() // DDL invalidates cached statements
		return db.createTable(st)
	case *ast.CreateArray:
		db.pcache.purge()
		return db.createArray(st)
	case *ast.Drop:
		db.pcache.purge()
		return db.drop(st)
	case *ast.AlterDimension:
		db.pcache.purge()
		return db.alterDimension(st)
	case *ast.Insert:
		return db.insert(st)
	case *ast.Update:
		return db.update(st)
	case *ast.Delete:
		return db.deleteStmt(st)
	case *ast.Txn:
		return db.txnStmt(s, st)
	case *ast.Explain:
		return db.explain(db.cat, st)
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

// runSelect binds, optimizes, compiles and interprets a SELECT against the
// given catalog (live for writers/transactions, a snapshot for readers).
func (db *DB) runSelect(ctx context.Context, cat *catalog.Catalog, sel *ast.Select) (*Result, error) {
	prog, err := compileSelect(cat, sel)
	if err != nil {
		return nil, err
	}
	mctx, err := mal.RunCtx(ctx, prog)
	if err != nil {
		return nil, err
	}
	return assembleResult(prog, mctx)
}

// compileSelect runs the full front-end pipeline of Fig. 2.
func compileSelect(cat *catalog.Catalog, sel *ast.Select) (*mal.Program, error) {
	b := rel.NewBinder(cat)
	plan, err := b.BindSelect(sel)
	if err != nil {
		return nil, err
	}
	plan = rel.Optimize(plan)
	return mal.Compile(plan)
}

// explain renders the logical plan (EXPLAIN) or the MAL program (PLAN).
func (db *DB) explain(cat *catalog.Catalog, e *ast.Explain) (*Result, error) {
	sel, ok := e.Stmt.(*ast.Select)
	if !ok {
		return nil, fmt.Errorf("EXPLAIN/PLAN supports SELECT statements")
	}
	b := rel.NewBinder(cat)
	plan, err := b.BindSelect(sel)
	if err != nil {
		return nil, err
	}
	plan = rel.Optimize(plan)
	if !e.MAL {
		return textResult(rel.Explain(plan)), nil
	}
	prog, err := mal.Compile(plan)
	if err != nil {
		return nil, err
	}
	return textResult(prog.String()), nil
}

// Package core is the SciQL engine: it ties the parser, binder, MAL
// compiler/interpreter and storage kernel into a database with sessions,
// transactions and persistence. It is the public API of the library; the
// root package re-exports it.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/rel"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
)

// DB is a SciQL database: a catalog of tables and arrays plus the engine
// state.
//
// Statement execution is split into two paths. Reads (SELECT, EXPLAIN,
// PLAN) run lock-free against the last published catalog snapshot, so any
// number of concurrent readers execute truly in parallel with each other
// and with the writer. Writes (DDL, DML, transaction control) keep
// single-writer semantics under mu: each mutating statement executes
// against the live catalog and then publishes a fresh copy-on-write
// snapshot, so readers always observe statement-atomic (and, inside
// explicit transactions, commit-atomic) state — snapshot isolation.
type DB struct {
	// mu is the writer lock: held exclusively for every mutating
	// statement (and briefly, shared, by readers to route against the
	// transaction state). The published snapshot is what lets readers
	// drop the lock before executing.
	mu  sync.RWMutex
	cat *catalog.Catalog // live catalog, mutated only under mu
	dir string           // persistence directory; empty = in-memory

	// view is the published immutable snapshot readers execute against.
	// Objects in it are frozen (catalog.Table.Freeze): their storage is
	// never mutated in place once published.
	view atomic.Pointer[catalog.Catalog]

	// dirty names the objects mutated since the last publication; the
	// next publish re-freezes exactly these (copy-on-write granularity).
	dirty map[string]struct{}

	txn      *txn     // open explicit transaction, nil in autocommit
	txnOwner *Session // session holding the open transaction

	session *Session // default session used by the DB-level Exec/Query

	pcache *parseCache // bounded LRU of parsed statements, purged on DDL
}

// New creates an empty in-memory database.
func New() *DB {
	db := &DB{cat: catalog.New(), dirty: map[string]struct{}{}, pcache: newParseCache()}
	db.session = &Session{db: db}
	db.view.Store(catalog.New())
	return db
}

// Open loads (or initialises) a database persisted in dir.
func Open(dir string) (*DB, error) {
	db := &DB{cat: catalog.New(), dir: dir, dirty: map[string]struct{}{}, pcache: newParseCache()}
	db.session = &Session{db: db}
	if err := db.load(); err != nil {
		return nil, err
	}
	// Publish the loaded state as the first snapshot.
	for _, n := range db.cat.TableNames() {
		db.dirty[n] = struct{}{}
	}
	for _, n := range db.cat.ArrayNames() {
		db.dirty[n] = struct{}{}
	}
	db.view.Store(catalog.New())
	db.publishLocked()
	return db, nil
}

// Catalog exposes the live database catalog (read-mostly; used by tools).
// It is not synchronised against concurrent writers beyond its own map
// locks; concurrent readers should prefer Snapshot.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Snapshot returns the last published immutable catalog snapshot: the
// state every new read statement observes. Safe for concurrent use.
func (db *DB) Snapshot() *catalog.Catalog { return db.view.Load() }

// Close persists the database (when opened with a directory) and releases
// it. An open transaction is rolled back.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn != nil {
		db.txn.rollback(db)
		db.txn = nil
		db.txnOwner = nil
	}
	if db.dir == "" {
		return nil
	}
	return db.save()
}

// Exec parses and executes a semicolon-separated batch on the default
// session, returning one result per statement. Repeated batches skip the
// parser via the DB's statement cache. Safe for concurrent use; reads run
// in parallel, writes serialise.
func (db *DB) Exec(query string) ([]*Result, error) { return db.session.Exec(query) }

// Query executes exactly one statement on the default session and returns
// its result. Repeated statements skip the parser via the DB's statement
// cache. Safe for concurrent use.
func (db *DB) Query(query string) (*Result, error) { return db.session.Query(query) }

// MustQuery executes a statement and panics on error (testing/examples).
func (db *DB) MustQuery(query string) *Result {
	r, err := db.Query(query)
	if err != nil {
		panic(fmt.Sprintf("query %q: %v", query, err))
	}
	return r
}

// ExecStmt executes one parsed statement on the default session.
func (db *DB) ExecStmt(stmt ast.Statement) (*Result, error) {
	return db.execStmt(db.session, stmt)
}

// parse resolves a query text to parsed statements through the cache.
func (db *DB) parse(query string) ([]ast.Statement, error) {
	if stmts, ok := db.pcache.get(query); ok {
		return stmts, nil
	}
	stmts, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	db.pcache.put(query, stmts)
	return stmts, nil
}

// execStmt routes one statement for a session: reads execute lock-free
// against the published snapshot unless the session holds the open
// transaction (read-your-writes); everything else takes the writer lock.
func (db *DB) execStmt(s *Session, stmt ast.Statement) (*Result, error) {
	switch stmt.(type) {
	case *ast.Select, *ast.Explain:
		db.mu.RLock()
		inTxn := db.txn != nil && db.txnOwner == s
		snap := db.view.Load()
		db.mu.RUnlock()
		if !inTxn {
			return db.execRead(snap, stmt)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn != nil && db.txnOwner != s {
		return nil, fmt.Errorf("another session holds an open transaction; writes are blocked until it commits or rolls back")
	}
	r, err := db.execLocked(s, stmt)
	// Publish statement-atomically in autocommit. Inside an explicit
	// transaction publication waits for COMMIT, so concurrent readers
	// never observe uncommitted state.
	if db.txn == nil && len(db.dirty) > 0 {
		db.publishLocked()
	}
	return r, err
}

// execRead executes a read-only statement against an immutable snapshot.
// It runs without any engine lock: the snapshot's storage is frozen.
func (db *DB) execRead(cat *catalog.Catalog, stmt ast.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *ast.Select:
		return db.runSelect(cat, s)
	case *ast.Explain:
		return db.explain(cat, s)
	default:
		return nil, fmt.Errorf("unsupported read statement %T", stmt)
	}
}

func (db *DB) execLocked(s *Session, stmt ast.Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *ast.Select:
		return db.runSelect(db.cat, st)
	case *ast.CreateTable:
		db.pcache.purge() // DDL invalidates cached statements
		return db.createTable(st)
	case *ast.CreateArray:
		db.pcache.purge()
		return db.createArray(st)
	case *ast.Drop:
		db.pcache.purge()
		return db.drop(st)
	case *ast.AlterDimension:
		db.pcache.purge()
		return db.alterDimension(st)
	case *ast.Insert:
		return db.insert(st)
	case *ast.Update:
		return db.update(st)
	case *ast.Delete:
		return db.deleteStmt(st)
	case *ast.Txn:
		return db.txnStmt(s, st)
	case *ast.Explain:
		return db.explain(db.cat, st)
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

// runSelect binds, optimizes, compiles and interprets a SELECT against the
// given catalog (live for writers/transactions, a snapshot for readers).
func (db *DB) runSelect(cat *catalog.Catalog, sel *ast.Select) (*Result, error) {
	prog, err := compileSelect(cat, sel)
	if err != nil {
		return nil, err
	}
	ctx, err := mal.Run(prog)
	if err != nil {
		return nil, err
	}
	return assembleResult(prog, ctx)
}

// compileSelect runs the full front-end pipeline of Fig. 2.
func compileSelect(cat *catalog.Catalog, sel *ast.Select) (*mal.Program, error) {
	b := rel.NewBinder(cat)
	plan, err := b.BindSelect(sel)
	if err != nil {
		return nil, err
	}
	plan = rel.Optimize(plan)
	return mal.Compile(plan)
}

// explain renders the logical plan (EXPLAIN) or the MAL program (PLAN).
func (db *DB) explain(cat *catalog.Catalog, e *ast.Explain) (*Result, error) {
	sel, ok := e.Stmt.(*ast.Select)
	if !ok {
		return nil, fmt.Errorf("EXPLAIN/PLAN supports SELECT statements")
	}
	b := rel.NewBinder(cat)
	plan, err := b.BindSelect(sel)
	if err != nil {
		return nil, err
	}
	plan = rel.Optimize(plan)
	if !e.MAL {
		return textResult(rel.Explain(plan)), nil
	}
	prog, err := mal.Compile(plan)
	if err != nil {
		return nil, err
	}
	return textResult(prog.String()), nil
}

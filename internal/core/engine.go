// Package core is the SciQL engine: it ties the parser, binder, MAL
// compiler/interpreter and storage kernel into a database with sessions,
// transactions and persistence. It is the public API of the library; the
// root package re-exports it.
package core

import (
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/rel"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
)

// DB is a SciQL database: a catalog of tables and arrays plus the engine
// state. All statements execute under a single-writer lock, giving
// serialisable isolation.
type DB struct {
	mu  sync.Mutex
	cat *catalog.Catalog
	dir string // persistence directory; empty = in-memory

	txn *txn // open explicit transaction, nil in autocommit

	pcache *parseCache // bounded LRU of parsed statements, purged on DDL
}

// New creates an empty in-memory database.
func New() *DB {
	return &DB{cat: catalog.New(), pcache: newParseCache()}
}

// Open loads (or initialises) a database persisted in dir.
func Open(dir string) (*DB, error) {
	db := &DB{cat: catalog.New(), dir: dir, pcache: newParseCache()}
	if err := db.load(); err != nil {
		return nil, err
	}
	return db, nil
}

// Catalog exposes the database catalog (read-mostly; used by tools).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Close persists the database (when opened with a directory) and releases it.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn != nil {
		db.txn.rollback(db)
		db.txn = nil
	}
	if db.dir == "" {
		return nil
	}
	return db.save()
}

// Exec parses and executes a semicolon-separated batch, returning one
// result per statement. Repeated batches skip the parser via the DB's
// statement cache.
func (db *DB) Exec(query string) ([]*Result, error) {
	stmts, ok := db.pcache.get(query)
	if !ok {
		var err error
		stmts, err = parser.Parse(query)
		if err != nil {
			return nil, err
		}
		db.pcache.put(query, stmts)
	}
	out := make([]*Result, 0, len(stmts))
	for _, s := range stmts {
		r, err := db.ExecStmt(s)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Query executes exactly one statement and returns its result. Repeated
// statements skip the parser via the DB's statement cache.
func (db *DB) Query(query string) (*Result, error) {
	if stmts, ok := db.pcache.get(query); ok && len(stmts) == 1 {
		return db.ExecStmt(stmts[0])
	}
	stmt, err := parser.ParseOne(query)
	if err != nil {
		return nil, err
	}
	db.pcache.put(query, []ast.Statement{stmt})
	return db.ExecStmt(stmt)
}

// MustQuery executes a statement and panics on error (testing/examples).
func (db *DB) MustQuery(query string) *Result {
	r, err := db.Query(query)
	if err != nil {
		panic(fmt.Sprintf("query %q: %v", query, err))
	}
	return r
}

// ExecStmt executes one parsed statement.
func (db *DB) ExecStmt(stmt ast.Statement) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.execLocked(stmt)
}

func (db *DB) execLocked(stmt ast.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *ast.Select:
		return db.runSelect(s)
	case *ast.CreateTable:
		db.pcache.purge() // DDL invalidates cached statements
		return db.createTable(s)
	case *ast.CreateArray:
		db.pcache.purge()
		return db.createArray(s)
	case *ast.Drop:
		db.pcache.purge()
		return db.drop(s)
	case *ast.AlterDimension:
		db.pcache.purge()
		return db.alterDimension(s)
	case *ast.Insert:
		return db.insert(s)
	case *ast.Update:
		return db.update(s)
	case *ast.Delete:
		return db.deleteStmt(s)
	case *ast.Txn:
		return db.txnStmt(s)
	case *ast.Explain:
		return db.explain(s)
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

// runSelect binds, optimizes, compiles and interprets a SELECT.
func (db *DB) runSelect(sel *ast.Select) (*Result, error) {
	prog, err := db.compileSelect(sel)
	if err != nil {
		return nil, err
	}
	ctx, err := mal.Run(prog)
	if err != nil {
		return nil, err
	}
	return assembleResult(prog, ctx)
}

// compileSelect runs the full front-end pipeline of Fig. 2.
func (db *DB) compileSelect(sel *ast.Select) (*mal.Program, error) {
	b := rel.NewBinder(db.cat)
	plan, err := b.BindSelect(sel)
	if err != nil {
		return nil, err
	}
	plan = rel.Optimize(plan)
	return mal.Compile(plan)
}

// explain renders the logical plan (EXPLAIN) or the MAL program (PLAN).
func (db *DB) explain(e *ast.Explain) (*Result, error) {
	sel, ok := e.Stmt.(*ast.Select)
	if !ok {
		return nil, fmt.Errorf("EXPLAIN/PLAN supports SELECT statements")
	}
	b := rel.NewBinder(db.cat)
	plan, err := b.BindSelect(sel)
	if err != nil {
		return nil, err
	}
	plan = rel.Optimize(plan)
	if !e.MAL {
		return textResult(rel.Explain(plan)), nil
	}
	prog, err := mal.Compile(plan)
	if err != nil {
		return nil, err
	}
	return textResult(prog.String()), nil
}

package core

// Optimistic concurrency for autocommit DML — the parallel-prepare half
// of the concurrent write path (commit.go is the group-fsync half).
//
// A mutating statement used to spend its whole life under the writer
// lock: bind, evaluate the WHERE mask and SET expressions, cast every
// value, then mutate. For non-conflicting writers that serialises work
// that is pure — planning reads the catalog without touching it. The
// optimistic path moves the pure part off the lock:
//
//  1. prepare — plan the statement against the last *published* snapshot
//     (the same immutable catalog readers use), producing a staged
//     effect plus the snapshot Mod of the one object it targets;
//  2. validate + apply — take the writer lock, check the live object's
//     Mod still equals the snapshot's (first-committer-wins at object
//     granularity), replay the staged effect, run the shared autocommit
//     boundary (enqueue on the commit queue + publish), drop the lock;
//  3. wait — block on the group-commit fsync outside the lock.
//
// Mod stamps come from a database-wide sequence (stampMod), bumped
// before every mutation, so Mod equality proves the object's content is
// bit-identical to the snapshot the plan was built against — including
// across a DROP + CREATE of the same name. Losers get ErrWriteConflict;
// the statement router retries with a fresh snapshot a few times and
// then falls back to the serialized path, which always makes progress,
// so plain Exec callers never observe a spurious conflict error.
//
// Statements whose plans read more than their one target object
// (INSERT ... SELECT), or that reshape storage (array INSERT growing
// unbounded dimensions), or that run inside an explicit transaction,
// stay on the serialized path.

import (
	"errors"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/sql/ast"
)

// ErrWriteConflict reports that an optimistic write lost the
// first-committer-wins race: between prepare (against a published
// snapshot) and apply (under the writer lock) another writer modified —
// or dropped, or dropped and recreated — the target object.
var ErrWriteConflict = errors.New("write conflict")

// errOptimisticFallback tells the router the staged write cannot be
// applied in the current engine state (an explicit transaction opened,
// or group commit shut down) and the statement must take the serialized
// path instead. Never returned to users.
var errOptimisticFallback = errors.New("optimistic apply: fall back to serialized path")

// optimisticRetries bounds how many fresh-snapshot retries the router
// gives an optimistic statement before falling back to the serialized
// path.
const optimisticRetries = 3

// stagedWrite is a DML effect prepared outside the writer lock against a
// published snapshot, plus what apply needs to validate it: the target
// object and its snapshot Mod. Exactly one of applyT/applyA is set.
type stagedWrite struct {
	name    string
	isTable bool
	mod     uint64
	applyT  func(db *DB, t *catalog.Table) (*Result, error)
	applyA  func(db *DB, a *catalog.Array) (*Result, error)
}

// prepareOptimistic stages an eligible DML statement against snap. A nil
// staged write with a nil error means "not eligible — run serialized":
// ineligible statement shapes and missing objects fall back rather than
// erroring, because the serialized path recomputes against the live
// catalog and reports the authoritative error (a stale snapshot could
// misreport, e.g. for a table created after the snapshot was taken).
func prepareOptimistic(snap *catalog.Catalog, stmt ast.Statement) (*stagedWrite, error) {
	switch s := stmt.(type) {
	case *ast.Insert:
		if s.Query != nil {
			// INSERT ... SELECT plans against arbitrary objects; only the
			// serialized path sees them consistently with the target.
			return nil, nil
		}
		t, ok := snap.Table(s.Table)
		if !ok {
			// Array INSERT can grow unbounded dimensions — a reshape, not
			// an append — so it stays serialized; so do missing objects.
			return nil, nil
		}
		full, err := stageTableInsert(snap, t, s)
		if err != nil {
			return nil, err
		}
		return &stagedWrite{name: t.Name, isTable: true, mod: t.Mod,
			applyT: func(db *DB, lt *catalog.Table) (*Result, error) {
				return db.applyTableInsert(lt, full)
			}}, nil
	case *ast.Update:
		if t, ok := snap.Table(s.Table); ok {
			p, err := planTableUpdate(snap, t, s)
			if err != nil {
				return nil, err
			}
			return &stagedWrite{name: t.Name, isTable: true, mod: t.Mod,
				applyT: func(db *DB, lt *catalog.Table) (*Result, error) {
					return db.applyTableUpdatePlan(lt, p)
				}}, nil
		}
		if a, ok := snap.Array(s.Table); ok {
			p, err := planArrayUpdate(snap, a, s)
			if err != nil {
				return nil, err
			}
			return &stagedWrite{name: a.Name, mod: a.Mod,
				applyA: func(db *DB, la *catalog.Array) (*Result, error) {
					return db.applyArrayUpdatePlan(la, p)
				}}, nil
		}
		return nil, nil
	case *ast.Delete:
		if t, ok := snap.Table(s.Table); ok {
			idxs, err := planTableDelete(snap, t, s)
			if err != nil {
				return nil, err
			}
			return &stagedWrite{name: t.Name, isTable: true, mod: t.Mod,
				applyT: func(db *DB, lt *catalog.Table) (*Result, error) {
					return db.applyTableDeletePlan(lt, idxs)
				}}, nil
		}
		if a, ok := snap.Array(s.Table); ok {
			idxs, err := planArrayDelete(snap, a, s)
			if err != nil {
				return nil, err
			}
			return &stagedWrite{name: a.Name, mod: a.Mod,
				applyA: func(db *DB, la *catalog.Array) (*Result, error) {
					return db.applyArrayDeletePlan(la, idxs)
				}}, nil
		}
		return nil, nil
	}
	return nil, nil
}

// execOptimistic runs one autocommit DML statement through the
// optimistic path. ok=false means the caller must run the serialized
// path: ineligible statement, prepare error (the serialized path
// reports the authoritative message), engine state change, or a
// conflict storm that exhausted the retries.
func (db *DB) execOptimistic(stmt ast.Statement) (*Result, *commitReq, bool, error) {
	for attempt := 0; attempt < optimisticRetries; attempt++ {
		db.mu.RLock()
		ready := db.commitQ != nil && db.txn == nil
		snap := db.view.Load()
		db.mu.RUnlock()
		if !ready {
			return nil, nil, false, nil
		}
		st, err := prepareOptimistic(snap, stmt)
		if st == nil || err != nil {
			return nil, nil, false, nil
		}
		r, req, aerr := db.applyStaged(st)
		switch {
		case errors.Is(aerr, ErrWriteConflict):
			continue // lost the race: re-prepare against a fresh snapshot
		case errors.Is(aerr, errOptimisticFallback):
			return nil, nil, false, nil
		}
		return r, req, true, aerr
	}
	return nil, nil, false, nil
}

// applyStaged validates and applies one staged write under the writer
// lock, then runs the shared autocommit boundary. The returned commit
// request must be waited on after the lock is released (execStmtCtx).
func (db *DB) applyStaged(st *stagedWrite) (*Result, *commitReq, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.txn != nil || db.commitQ == nil {
		return nil, nil, errOptimisticFallback
	}
	if werr := db.writeBlockedErr(); werr != nil {
		return nil, nil, werr
	}
	var (
		r   *Result
		err error
	)
	if st.isTable {
		lt, ok := db.cat.Table(st.name)
		if !ok || lt.Mod != st.mod {
			return nil, nil, fmt.Errorf("%w: %q was modified concurrently", ErrWriteConflict, st.name)
		}
		r, err = st.applyT(db, lt)
	} else {
		la, ok := db.cat.Array(st.name)
		if !ok || la.Mod != st.mod {
			return nil, nil, fmt.Errorf("%w: %q was modified concurrently", ErrWriteConflict, st.name)
		}
		r, err = st.applyA(db, la)
	}
	req, berr := db.commitBoundaryLocked()
	if berr != nil && err == nil {
		err = berr
	}
	return r, req, err
}

// ExecOptimistic executes exactly one DML statement through the
// optimistic path without retrying: prepare runs against the published
// snapshot outside the writer lock, and if a conflicting writer commits
// first the error wraps ErrWriteConflict — the caller owns the retry
// policy. Statements the optimistic path does not cover (anything but
// single-object INSERT ... VALUES / UPDATE / DELETE), in-memory or
// read-only databases, and databases opened with group commit disabled
// are rejected. Prepare errors are reported relative to the snapshot.
func (s *Session) ExecOptimistic(query string) (*Result, error) {
	stmts, err := s.db.parse(query)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("ExecOptimistic takes exactly one statement, got %d", len(stmts))
	}
	db := s.db
	db.mu.RLock()
	ready := db.commitQ != nil && db.txn == nil
	snap := db.view.Load()
	db.mu.RUnlock()
	if !ready {
		return nil, fmt.Errorf("optimistic execution needs group commit enabled and no open transaction")
	}
	st, err := prepareOptimistic(snap, stmts[0])
	if err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("statement is not eligible for optimistic execution")
	}
	r, req, err := db.applyStaged(st)
	if errors.Is(err, errOptimisticFallback) {
		return nil, fmt.Errorf("%w: engine state changed during prepare", ErrWriteConflict)
	}
	if req != nil {
		if werr := <-req.done; werr != nil && err == nil {
			err = werr
		}
	}
	return r, err
}

package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vfs"
)

// openFaulted opens a fresh directory-backed database over a FailFS with
// no faults armed yet.
func openFaulted(t *testing.T, ckptBytes int64) (*DB, *vfs.FailFS, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "db")
	fs := vfs.NewFailFS(nil)
	db, err := OpenWithFS(dir, ckptBytes, fs)
	if err != nil {
		t.Fatalf("OpenWithFS: %v", err)
	}
	return db, fs, dir
}

// TestFaultWALFsync: an injected fsync failure on the WAL latches
// read-only degraded mode; reads keep serving, writes fail with
// ErrDegraded, and a successful Save clears it.
func TestFaultWALFsync(t *testing.T) {
	db, fs, _ := openFaulted(t, 0)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)

	boom := errors.New("injected fsync failure")
	fs.FailOn(vfs.OpSync, "wal.log", 1, boom)
	_, err := db.Query(`INSERT INTO t VALUES (2)`)
	if err == nil || !strings.Contains(err.Error(), "wal append") {
		t.Fatalf("err = %v, want a wal append failure", err)
	}
	if db.Degraded() == nil {
		t.Fatal("degraded mode must latch after a WAL append failure")
	}

	// Reads still serve the last snapshot.
	if _, rerr := db.Query(`SELECT COUNT(*) FROM t`); rerr != nil {
		t.Fatalf("read in degraded mode: %v", rerr)
	}

	// Writes fail with the sentinel, without touching storage.
	if _, werr := db.Query(`INSERT INTO t VALUES (3)`); !errors.Is(werr, ErrDegraded) {
		t.Fatalf("write in degraded mode = %v, want ErrDegraded", werr)
	}

	// An explicit Save re-converges disk with memory and clears the latch.
	if serr := db.Save(); serr != nil {
		t.Fatalf("Save: %v", serr)
	}
	if db.Degraded() != nil {
		t.Fatalf("degraded must clear after a successful checkpoint: %v", db.Degraded())
	}
	if _, werr := db.Query(`INSERT INTO t VALUES (4)`); werr != nil {
		t.Fatalf("write after recovery: %v", werr)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestFaultWALShortWrite: a short write (disk full mid-record) on the
// WAL is a durability failure like a failed fsync.
func TestFaultWALShortWrite(t *testing.T) {
	db, fs, _ := openFaulted(t, 0)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	fs.ShortWriteOn("wal.log", 1)
	if _, err := db.Query(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("short WAL write must fail the statement")
	}
	if db.Degraded() == nil {
		t.Fatal("degraded mode must latch after a short WAL write")
	}
	_ = db.Close()
}

// TestFaultDegradedLatchesOnce: the first durability failure wins; later
// refused writes do not overwrite the cause.
func TestFaultDegradedLatchesOnce(t *testing.T) {
	db, fs, _ := openFaulted(t, 0)
	defer db.Close()
	db.MustQuery(`CREATE TABLE t (a INT)`)

	first := errors.New("first failure")
	fs.FailOn(vfs.OpSync, "wal.log", 1, first)
	if _, err := db.Query(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("expected injected failure")
	}
	cause := db.Degraded()
	if cause == nil || !strings.Contains(cause.Error(), "first failure") {
		t.Fatalf("cause = %v, want the first failure", cause)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Query(`INSERT INTO t VALUES (9)`); !errors.Is(err, ErrDegraded) {
			t.Fatalf("refused write = %v, want ErrDegraded", err)
		}
	}
	if got := db.Degraded(); got == nil || got.Error() != cause.Error() {
		t.Fatalf("cause changed from %v to %v; must latch once", cause, got)
	}
}

// TestFaultReopenRecovers: after a WAL failure the unacked statement is
// lost by design; reopening replays exactly the acked commits and clears
// degraded mode.
func TestFaultReopenRecovers(t *testing.T) {
	db, fs, dir := openFaulted(t, 0)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`) // acked

	fs.FailOn(vfs.OpSync, "wal.log", 1, errors.New("injected"))
	if _, err := db.Query(`INSERT INTO t VALUES (2)`); err == nil { // not acked
		t.Fatal("expected injected failure")
	}
	// Crash without Close: the failed statement's in-memory effects must
	// not be checkpointed.
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if db2.Degraded() != nil {
		t.Fatalf("reopen must clear degraded mode: %v", db2.Degraded())
	}
	r := db2.MustQuery(`SELECT a FROM t ORDER BY a`)
	if r.NumRows() != 1 {
		t.Fatalf("reopened store has %d rows, want exactly the acked commit (1)", r.NumRows())
	}
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

// TestFaultCheckpointRename: a failed manifest rename during checkpoint
// latches degraded mode, a clean retry (Save) recovers, and the data
// survives a reopen.
func TestFaultCheckpointRename(t *testing.T) {
	db, fs, dir := openFaulted(t, 0)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)

	fs.FailOn(vfs.OpRename, "catalog.json", 1, errors.New("injected rename failure"))
	if err := db.Save(); err == nil {
		t.Fatal("checkpoint with failing rename must error")
	}
	if db.Degraded() == nil {
		t.Fatal("degraded mode must latch after a checkpoint failure")
	}
	if err := db.Save(); err != nil { // fault spent: retry succeeds
		t.Fatalf("retry Save: %v", err)
	}
	if db.Degraded() != nil {
		t.Fatalf("degraded must clear: %v", db.Degraded())
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if got := db2.MustQuery(`SELECT COUNT(*) FROM t`).String(); !strings.Contains(got, "1") {
		t.Fatalf("count after reopen = %q", got)
	}
}

// TestFaultSegmentENOSPC: a segment write failing with ENOSPC during a
// checkpoint degrades the engine but loses nothing: the old manifest and
// the WAL still cover every acked commit.
func TestFaultSegmentENOSPC(t *testing.T) {
	db, fs, dir := openFaulted(t, 0)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	for i := 0; i < 5; i++ {
		db.MustQuery(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	fs.ShortWriteOn(".bat", 1) // first segment write hits disk-full
	if err := db.Save(); err == nil {
		t.Fatal("checkpoint with failing segment write must error")
	}
	if db.Degraded() == nil {
		t.Fatal("degraded mode must latch")
	}
	// Crash-reopen: manifest untouched, WAL replay restores all 5 rows.
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	r := db2.MustQuery(`SELECT COUNT(*) FROM t`)
	if got := r.String(); !strings.Contains(got, "5") {
		t.Fatalf("count after reopen = %q, want 5", got)
	}
}

// TestFaultOpenTxnNotDegrading: guard-clause failures (checkpoint inside
// a transaction) are usage errors, not durability failures, and must not
// latch degraded mode.
func TestFaultOpenTxnNotDegrading(t *testing.T) {
	db, _, _ := openFaulted(t, 0)
	defer db.Close()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	s := db.NewSession()
	if _, err := s.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err == nil {
		t.Fatal("Save inside a transaction must error")
	}
	if db.Degraded() != nil {
		t.Fatalf("guard-clause error latched degraded mode: %v", db.Degraded())
	}
	if _, err := s.Exec(`ROLLBACK`); err != nil {
		t.Fatal(err)
	}
}

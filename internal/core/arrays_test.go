package core

import (
	"strings"
	"sync"
	"testing"
)

// TestTileStepForm exercises the three-part tile form [lo:step:hi]: sample
// every second cell within the tile window.
func TestTileStepForm(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY s (x INT DIMENSION[0:1:8], v INT DEFAULT 0)`)
	db.MustQuery(`UPDATE s SET v = x`)
	// Tile covers x, x+2 (step 2 within [x, x+4)).
	res := db.MustQuery(`SELECT [x], SUM(v) FROM s GROUP BY s[x:2:x+4]`)
	sum := res.Cols[1]
	// Anchor 0: cells 0 and 2 → 2. Anchor 5: cells 5 and 7 → 12.
	if sum.Get(0).Int64() != 2 {
		t.Errorf("anchor 0 sum = %v, want 2", sum.Get(0))
	}
	if sum.Get(5).Int64() != 12 {
		t.Errorf("anchor 5 sum = %v, want 12", sum.Get(5))
	}
	// Anchor 7: only cell 7 in bounds → 7.
	if sum.Get(7).Int64() != 7 {
		t.Errorf("anchor 7 sum = %v, want 7", sum.Get(7))
	}
}

func TestTileMinMaxCountStar(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY a (x INT DIMENSION[0:1:4], v INT DEFAULT 0)`)
	db.MustQuery(`UPDATE a SET v = CASE WHEN x = 2 THEN 9 ELSE x END`)
	db.MustQuery(`DELETE FROM a WHERE x = 1`)
	res := db.MustQuery(`SELECT [x], MIN(v), MAX(v), COUNT(v), COUNT(*) FROM a GROUP BY a[x-1:x+2]`)
	// Anchor 0: cells {0(=0), 1(hole)}: min=0 max=0 count(v)=1 count(*)=2.
	row := func(x int, col int) int64 {
		v := res.Cols[col].Get(x)
		if v.IsNull() {
			return -999
		}
		n, _ := v.AsInt()
		return n
	}
	if row(0, 1) != 0 || row(0, 2) != 0 || row(0, 3) != 1 || row(0, 4) != 2 {
		t.Errorf("anchor 0: %d %d %d %d", row(0, 1), row(0, 2), row(0, 3), row(0, 4))
	}
	// Anchor 2: cells {1(hole), 2(=9), 3(=3)}: min=3 max=9 count=2 count*=3.
	if row(2, 1) != 3 || row(2, 2) != 9 || row(2, 3) != 2 || row(2, 4) != 3 {
		t.Errorf("anchor 2: %d %d %d %d", row(2, 1), row(2, 2), row(2, 3), row(2, 4))
	}
}

// TestTileAnchorValueReference checks the Game-of-Life idiom: the
// projection mixes the aggregate with the anchor cell's own value.
func TestTileAnchorValueReference(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY a (x INT DIMENSION[0:1:5], v INT DEFAULT 1)`)
	res := db.MustQuery(`SELECT [x], SUM(v) - v FROM a GROUP BY a[x-1:x+2]`)
	want := []int64{1, 2, 2, 2, 1} // neighbour counts on a line of ones
	for i, w := range want {
		if got := res.Cols[1].Get(i).Int64(); got != w {
			t.Errorf("anchor %d: %d, want %d", i, got, w)
		}
	}
}

func TestConcurrentReaders(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY m (x INT DIMENSION[0:1:32], y INT DIMENSION[0:1:32], v INT DEFAULT 1)`)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := `SELECT SUM(v) FROM m`
			if i%2 == 0 {
				q = `SELECT [x], [y], AVG(v) FROM m GROUP BY m[x:x+2][y:y+2]`
			}
			if _, err := db.Query(q); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConcurrentMixedReadWrite(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				db.Query(`INSERT INTO t VALUES (1)`)
			} else {
				db.Query(`SELECT COUNT(*) FROM t`)
			}
		}(i)
	}
	wg.Wait()
	res := db.MustQuery(`SELECT COUNT(*) FROM t`)
	if res.Value(0, 0).Int64() != 4 {
		t.Errorf("count = %v, want 4", res.Value(0, 0))
	}
}

func TestUpdateWithCellReference(t *testing.T) {
	// Shift-left via self-referencing UPDATE: all reads see the pre-update
	// state (simultaneous assignment).
	db := New()
	db.MustQuery(`CREATE ARRAY a (x INT DIMENSION[0:1:4], v INT DEFAULT 0)`)
	db.MustQuery(`UPDATE a SET v = x * 10`)
	db.MustQuery(`UPDATE a SET v = COALESCE(a[x+1].v, -1)`)
	res := db.MustQuery(`SELECT v FROM a ORDER BY x`)
	want := []string{"10", "20", "30", "-1"}
	for i, w := range want {
		if res.Value(i, 0).String() != w {
			t.Errorf("cell %d = %v, want %s", i, res.Value(i, 0), w)
		}
	}
}

func TestInsertOutsideFixedArrayFails(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY a (x INT DIMENSION[0:1:4], v INT DEFAULT 0)`)
	if _, err := db.Query(`INSERT INTO a VALUES (9, 1)`); err == nil {
		t.Fatal("insert outside fixed range must fail")
	}
	// Off-grid insert on a stepped dimension fails too.
	db.MustQuery(`CREATE ARRAY s (x INT DIMENSION[0:2:8], v INT DEFAULT 0)`)
	if _, err := db.Query(`INSERT INTO s VALUES (3, 1)`); err == nil {
		t.Fatal("off-grid insert must fail")
	}
}

func TestArrayGrowthPreservesData(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY ts (t INT DIMENSION, v INT DEFAULT -1)`)
	db.MustQuery(`INSERT INTO ts VALUES (5, 50)`)
	db.MustQuery(`INSERT INTO ts VALUES (2, 20)`)
	db.MustQuery(`INSERT INTO ts VALUES (7, 70)`)
	res := db.MustQuery(`SELECT t, v FROM ts ORDER BY t`)
	want := []string{"2|20", "3|-1", "4|-1", "5|50", "6|-1", "7|70"}
	got := allRows(res)
	if len(got) != len(want) {
		t.Fatalf("rows: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAlterDimensionShrinkDiscards(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY a (x INT DIMENSION[0:1:6], v INT DEFAULT 0)`)
	db.MustQuery(`UPDATE a SET v = x`)
	db.MustQuery(`ALTER ARRAY a ALTER DIMENSION x SET RANGE [2:1:4]`)
	res := db.MustQuery(`SELECT x, v FROM a ORDER BY x`)
	got := allRows(res)
	if len(got) != 2 || got[0] != "2|2" || got[1] != "3|3" {
		t.Errorf("shrunk array: %v", got)
	}
}

func TestTwoPartDimensionRange(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY a (x INT DIMENSION[3:6], v INT DEFAULT 0)`)
	res := db.MustQuery(`SELECT COUNT(*) FROM a`)
	if res.Value(0, 0).Int64() != 3 {
		t.Errorf("cells = %v, want 3 (step defaults to 1)", res.Value(0, 0))
	}
}

func TestGridErrors(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY a (x INT DIMENSION[0:1:3], v INT DEFAULT 0)`)
	res := db.MustQuery(`SELECT [x], v FROM a`)
	if _, err := res.Grid(); err == nil {
		t.Error("1-D grid render must fail")
	}
	res = db.MustQuery(`SELECT x, v FROM a`)
	if _, err := res.Grid(); err == nil {
		t.Error("table grid render must fail")
	}
}

func TestSlabWithSteppedDim(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY s (x INT DIMENSION[10:5:50], v INT DEFAULT 1)`)
	// Values 10,15,...,45. The slab bounds must respect the grid.
	res := db.MustQuery(`SELECT x FROM s WHERE x > 12 AND x <= 30 ORDER BY x`)
	got := allRows(res)
	want := []string{"15", "20", "25", "30"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("slab on stepped dim: %v", got)
	}
	// EXPLAIN confirms the pushdown happened.
	plan := db.MustQuery(`EXPLAIN SELECT x FROM s WHERE x > 12 AND x <= 30`)
	if !strings.Contains(plan.Text, "slab") {
		t.Errorf("no slab in plan:\n%s", plan.Text)
	}
}

func TestDeleteEntireArrayThenAggregate(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY a (x INT DIMENSION[0:1:4], v INT DEFAULT 5)`)
	db.MustQuery(`DELETE FROM a`)
	res := db.MustQuery(`SELECT SUM(v), COUNT(*), COUNT(v) FROM a`)
	if rowStr(res, 0) != "null|4|0" {
		t.Errorf("after full delete: %s", rowStr(res, 0))
	}
	// Cells still exist: INSERT can refill them.
	db.MustQuery(`INSERT INTO a SELECT [x], 1 FROM a`)
	res = db.MustQuery(`SELECT SUM(v) FROM a`)
	if res.Value(0, 0).Int64() != 4 {
		t.Errorf("refill failed: %v", res.Value(0, 0))
	}
}

func TestNestedTileInSubquery(t *testing.T) {
	// Aggregate over the result of a tiling query via a derived table.
	db := New()
	db.MustQuery(`CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 1)`)
	res := db.MustQuery(`SELECT MAX(t.s) FROM (
		SELECT [x], [y], SUM(v) AS s FROM m GROUP BY m[x-1:x+2][y-1:y+2]
	) AS t`)
	if res.Value(0, 0).Int64() != 9 {
		t.Errorf("max tile sum = %v, want 9", res.Value(0, 0))
	}
}

func TestDoubleAttributeTiling(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY w (x INT DIMENSION[0:1:4], a INT DEFAULT 1, b INT DEFAULT 2)`)
	res := db.MustQuery(`SELECT [x], SUM(a), SUM(b), SUM(a + b) FROM w GROUP BY w[x:x+2]`)
	// Anchor 0: two cells → sums 2, 4, 6.
	if res.Cols[1].Get(0).Int64() != 2 || res.Cols[2].Get(0).Int64() != 4 || res.Cols[3].Get(0).Int64() != 6 {
		t.Errorf("multi-attr tile sums: %v %v %v",
			res.Cols[1].Get(0), res.Cols[2].Get(0), res.Cols[3].Get(0))
	}
}

func TestCoalesceOverColumns(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT, b INT)`)
	db.MustQuery(`INSERT INTO t VALUES (NULL, 2), (1, NULL), (NULL, NULL)`)
	expectRows(t, db, `SELECT COALESCE(a, b, 0) FROM t`, []string{"2", "1", "0"})
}

func TestRollbackAfterPartialBatch(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)
	// The batch fails mid-way; the first statement's effect stays (each
	// statement autocommits), the failing one has no partial effect.
	_, err := db.Exec(`INSERT INTO t VALUES (2); INSERT INTO nosuch VALUES (3);`)
	if err == nil {
		t.Fatal("expected error")
	}
	expectRows(t, db, `SELECT COUNT(*) FROM t`, []string{"2"})
}

func TestPlanRendersSlabAndTile(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY m (x INT DIMENSION[0:1:16], y INT DIMENSION[0:1:16], v INT DEFAULT 0)`)
	res := db.MustQuery(`PLAN SELECT v FROM m WHERE x = 3 AND y >= 2 AND y < 5`)
	if !strings.Contains(res.Text, "array.slab") {
		t.Errorf("slab missing:\n%s", res.Text)
	}
	res = db.MustQuery(`PLAN SELECT [x], [y], SUM(v) FROM m GROUP BY m[x-4:x+5][y-4:y+5]`)
	if !strings.Contains(res.Text, "array.tileaggsat") {
		t.Errorf("SAT kernel missing for large tile:\n%s", res.Text)
	}
}

package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

// The crash-injection harness: a workload of committed writes runs
// against a directory-backed database, the directory is snapshotted
// without Close (as a crash would leave it), and the WAL is then cut at
// every byte offset — and corrupted at every byte offset — before
// reopening. Recovery must always land on exactly the state of some
// committed prefix: the golden-query fingerprint of the reopened
// database is compared byte for byte against the fingerprint taken live
// at that commit boundary.

// crashWorkload exercises every WAL record type: table DDL/DML, fixed
// and unbounded arrays, growth, reshape, drop, and a multi-statement
// transaction (whose commit must replay atomically or not at all).
var crashWorkload = []string{
	`CREATE TABLE kv (k INT, v VARCHAR, f DOUBLE DEFAULT 1.5)`,
	`INSERT INTO kv VALUES (1, 'one', 1.0), (2, 'two', 2.0), (3, 'three', 3.0)`,
	`UPDATE kv SET v = 'TWO', f = f * 10 WHERE k = 2`,
	`DELETE FROM kv WHERE k = 1`,
	`INSERT INTO kv (k) VALUES (4)`,
	`CREATE ARRAY m (x INT DIMENSION[0:1:3], y INT DIMENSION[0:1:3], v INT DEFAULT 0)`,
	`UPDATE m SET v = x * 10 + y`,
	`INSERT INTO m VALUES (1, 2, 99)`,
	`DELETE FROM m WHERE x = y`,
	`CREATE ARRAY ub (t INT DIMENSION, v DOUBLE DEFAULT 0.5)`,
	`INSERT INTO ub VALUES (5, 1.25)`,
	`INSERT INTO ub VALUES (9, 2.5)`,
	`ALTER ARRAY m ALTER DIMENSION x SET RANGE [0:1:5]`,
	`CREATE TABLE scratch (z INT)`,
	`INSERT INTO scratch VALUES (42)`,
	`DROP TABLE scratch`,
	`BEGIN; INSERT INTO kv VALUES (7, 'seven', 7.7); UPDATE kv SET f = 0.0 WHERE k = 7; COMMIT`,
}

// crashProbe is the golden-query suite run against recovered states.
// Objects missing in early prefixes render as errors, which fingerprint
// deterministically too.
const crashProbe = `
SELECT k, v, f FROM kv;
SELECT SUM(k), COUNT(*) FROM kv;
SELECT [x], [y], v FROM m;
SELECT [t], v FROM ub;
SELECT z FROM scratch;
`

func fingerprintDB(db *DB) string {
	return testutil.RenderScript(crashProbe, func(stmt string) (string, error) {
		results, err := db.Exec(stmt)
		var sb strings.Builder
		for _, r := range results {
			sb.WriteString(r.String())
		}
		return sb.String(), err
	})
}

// copyTree copies a database directory (catalog.json, bats/, wal.log).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// buildCrashBase runs the workload and returns the crash-image directory
// (snapshotted without Close), the WAL sizes at each commit boundary in
// ascending order, and the expected fingerprint at each boundary.
func buildCrashBase(t *testing.T) (base string, boundaries []int64, expected map[int64]string) {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SetWALCheckpointBytes(0) // keep every record in the log

	expected = map[int64]string{}
	record := func() {
		sz := db.WALSize()
		if _, ok := expected[sz]; !ok {
			boundaries = append(boundaries, sz)
			expected[sz] = fingerprintDB(db)
		}
	}
	record() // empty log: checkpoint-only state
	for _, stmt := range crashWorkload {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("workload %q: %v", stmt, err)
		}
		record()
	}
	// Snapshot the directory as a crash would leave it: no Close, no
	// final checkpoint. (The still-open handles don't matter; we only
	// read the copy.)
	base = filepath.Join(root, "crash-image")
	copyTree(t, dir, base)
	return base, boundaries, expected
}

// recoverAndFingerprint opens a crash image and returns its fingerprint.
func recoverAndFingerprint(t *testing.T, dir string) string {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if err := db.CheckIntegrity(); err != nil {
		db.Close()
		t.Fatalf("recovered database fails integrity check: %v", err)
	}
	fp := fingerprintDB(db)
	if err := db.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	return fp
}

// stateAt returns the expected fingerprint for a WAL cut/corruption at
// offset off: the state of the last commit whose records fit below off.
func stateAt(off int64, boundaries []int64, expected map[int64]string) string {
	last := boundaries[0]
	for _, b := range boundaries {
		if b <= off {
			last = b
		}
	}
	return expected[last]
}

// TestWALCrashTruncationMatrix cuts the log at every byte offset (every
// 7th under -short) and asserts recovery lands exactly on the last
// commit boundary at or below the cut.
func TestWALCrashTruncationMatrix(t *testing.T) {
	base, boundaries, expected := buildCrashBase(t)
	full := boundaries[len(boundaries)-1]
	head := boundaries[0] // wal header size: cuts below it corrupt the header

	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	work := filepath.Join(t.TempDir(), "work")
	for cut := head; cut <= full; cut += stride {
		os.RemoveAll(work)
		copyTree(t, base, work)
		walPath := filepath.Join(work, "wal.log")
		if err := os.Truncate(walPath, cut); err != nil {
			t.Fatal(err)
		}
		got := recoverAndFingerprint(t, work)
		want := stateAt(cut, boundaries, expected)
		if got != want {
			t.Fatalf("cut at %d: recovered state diverges\n--- got ---\n%s\n--- want ---\n%s", cut, got, want)
		}
	}
}

// TestWALCrashCorruptionMatrix flips every byte of the log body in turn
// (every 7th under -short): replay must stop at the corrupted commit and
// recover the state just before it — never error, never panic, never
// resurrect bytes past the corruption.
func TestWALCrashCorruptionMatrix(t *testing.T) {
	base, boundaries, expected := buildCrashBase(t)
	full, err := os.ReadFile(filepath.Join(base, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	head := boundaries[0]

	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	work := filepath.Join(t.TempDir(), "work")
	for off := head; off < int64(len(full)); off += stride {
		os.RemoveAll(work)
		copyTree(t, base, work)
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x5a
		if err := os.WriteFile(filepath.Join(work, "wal.log"), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got := recoverAndFingerprint(t, work)
		// The flipped byte sits inside the commit record that starts at
		// the last boundary <= off; that commit and everything after it
		// must vanish.
		want := stateAt(off, boundaries, expected)
		if got != want {
			t.Fatalf("flip at %d: recovered state diverges\n--- got ---\n%s\n--- want ---\n%s", off, got, want)
		}
	}
}

// TestWALRecoveryAfterCheckpoint interleaves an explicit checkpoint with
// commits: recovery must replay only the post-checkpoint tail on top of
// the segment store.
func TestWALRecoveryAfterCheckpoint(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SetWALCheckpointBytes(0)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1), (2)`)
	if err := db.Save(); err != nil { // checkpoint: segments now hold {1,2}
		t.Fatal(err)
	}
	if got := db.WALSize(); got >= 64 {
		t.Fatalf("wal not reset by checkpoint (size %d)", got)
	}
	db.MustQuery(`INSERT INTO t VALUES (3)`)
	db.MustQuery(`UPDATE t SET a = a * 100 WHERE a = 1`)

	image := filepath.Join(root, "crash-image")
	copyTree(t, dir, image)
	db2, err := Open(image)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := db2.MustQuery(`SELECT SUM(a), COUNT(*) FROM t`)
	sum, _ := r.Value(0, 0).AsInt()
	cnt, _ := r.Value(0, 1).AsInt()
	if sum != 105 || cnt != 3 {
		t.Fatalf("recovered SUM=%d COUNT=%d, want 105/3", sum, cnt)
	}
}

// TestWALStaleGenerationDiscarded simulates the checkpoint crash window:
// the manifest has moved to the next generation but an old-generation
// log (whose effects the checkpoint already folded in) is still lying
// around. Replaying it would double-apply; the generation check must
// discard it instead.
func TestWALStaleGenerationDiscarded(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SetWALCheckpointBytes(0)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)
	staleWAL, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil { // checkpoint folds the log in
		t.Fatal(err)
	}
	image := filepath.Join(root, "crash-image")
	copyTree(t, dir, image)
	// Put the pre-checkpoint log back, as a crash between the manifest
	// rename and the log reset would leave it.
	if err := os.WriteFile(filepath.Join(image, "wal.log"), staleWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(image)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := db2.MustQuery(`SELECT SUM(a), COUNT(*) FROM t`)
	sum, _ := r.Value(0, 0).AsInt()
	cnt, _ := r.Value(0, 1).AsInt()
	if sum != 1 || cnt != 1 {
		t.Fatalf("stale log replayed: SUM=%d COUNT=%d, want 1/1", sum, cnt)
	}
}

// TestCheckpointTxnDiscipline pins two checkpoint/transaction rules: a
// checkpoint is refused while a transaction is open (it would fold
// uncommitted effects into segments, double-applying them on COMMIT +
// crash), and a rolled-back transaction leaves nothing for the next
// checkpoint to rewrite (its objects again match their segments).
func TestCheckpointTxnDiscipline(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			db.Close()
		}
	}()
	db.SetWALCheckpointBytes(0)
	db.MustQuery(`CREATE TABLE big (a INT)`)
	db.MustQuery(`INSERT INTO big VALUES (1), (2), (3)`)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	before := db.CheckpointBytes()

	db.MustQuery(`BEGIN`)
	db.MustQuery(`UPDATE big SET a = a * 10`)
	if err := db.Save(); err == nil {
		t.Fatal("Save succeeded during an open transaction")
	}
	db.MustQuery(`ROLLBACK`)

	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if got := db.CheckpointBytes(); got != before {
		t.Fatalf("checkpoint rewrote %d bytes after a rollback-only transaction", got-before)
	}
	db.MustQuery(`UPDATE big SET a = a + 1`)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	after := db.CheckpointBytes()
	if after <= before {
		t.Fatal("real write not checkpointed")
	}

	// DELETE only flips deletion-mask bits, which live in the manifest:
	// the checkpoint must not rewrite the table's segments for it — and
	// the deletion must still survive a reopen.
	db.MustQuery(`DELETE FROM big WHERE a = 2`)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if got := db.CheckpointBytes(); got != after {
		t.Fatalf("DELETE-only checkpoint rewrote %d segment bytes", got-after)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	closed = true
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n, _ := db2.MustQuery(`SELECT COUNT(*) FROM big`).Value(0, 0).AsInt(); n != 2 {
		t.Fatalf("deletion lost by manifest-only checkpoint: %d rows, want 2", n)
	}
}

// TestWALBulkLoadDurable covers the vault's fast-ingestion path: a
// BulkSetAttrInts followed by an abandoned handle (no Close, no Save)
// must survive via its WAL record alone.
func TestWALBulkLoadDurable(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SetWALCheckpointBytes(0)
	db.MustQuery(`CREATE ARRAY img (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], p INT DEFAULT 0)`)
	data := make([]int64, 16)
	for i := range data {
		data[i] = int64(i * i)
	}
	if err := db.BulkSetAttrInts("img", "p", data); err != nil {
		t.Fatal(err)
	}
	image := filepath.Join(root, "crash-image")
	copyTree(t, dir, image)
	db2, err := Open(image)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, valid, err := db2.ReadAttrInts("img", "p")
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !valid[i] || got[i] != data[i] {
			t.Fatalf("cell %d = (%d, %v) after recovery, want (%d, true)", i, got[i], valid[i], data[i])
		}
	}
}

// TestWALCrashSIGKILL kills a child process mid-commit-stream with
// SIGKILL and asserts every acknowledged commit survives: the WAL fsync
// happens before the statement returns, so an acked insert must be
// present after recovery, and the recovered table must be an intact
// prefix 0..n-1 of what the child wrote.
func TestWALCrashSIGKILL(t *testing.T) {
	if os.Getenv("SCIQL_WAL_CRASH_CHILD") != "" {
		walCrashChild()
		return
	}
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short")
	}
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE TABLE t (a INT)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run", "TestWALCrashSIGKILL")
	cmd.Env = append(os.Environ(), "SCIQL_WAL_CRASH_CHILD="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	const wantAcks = 10
	acked := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "committed ") {
			acked++
			if acked >= wantAcks {
				break
			}
		}
	}
	if acked < wantAcks {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("child produced %d acks before exiting", acked)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, out)
	_ = cmd.Wait()

	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer db2.Close()
	r := db2.MustQuery(`SELECT COUNT(*), SUM(a), MAX(a) FROM t`)
	cnt, _ := r.Value(0, 0).AsInt()
	sum, _ := r.Value(0, 1).AsInt()
	max, _ := r.Value(0, 2).AsInt()
	if cnt < wantAcks {
		t.Fatalf("only %d rows survived, %d were acknowledged durable", cnt, wantAcks)
	}
	// An intact prefix 0..cnt-1: max and sum pin it exactly.
	if max != cnt-1 || sum != cnt*(cnt-1)/2 {
		t.Fatalf("recovered rows are not the prefix 0..%d: COUNT=%d SUM=%d MAX=%d", cnt-1, cnt, sum, max)
	}
}

// walCrashChild is the subprocess body: commit rows forever, ack each on
// stdout, and let the parent SIGKILL us whenever it pleases.
func walCrashChild() {
	dir := os.Getenv("SCIQL_WAL_CRASH_CHILD")
	db, err := Open(dir)
	if err != nil {
		fmt.Println("child open error:", err)
		os.Exit(1)
	}
	for i := 0; ; i++ {
		if _, err := db.Query(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			fmt.Println("child insert error:", err)
			os.Exit(1)
		}
		fmt.Printf("committed %d\n", i)
		if i > 100000 {
			time.Sleep(time.Millisecond) // the parent has surely lost interest
		}
	}
}

package core

import (
	"errors"
	"fmt"
	"sync"
)

// Group commit: the write-ahead pipeline that lets N concurrent writers
// share WAL fsyncs instead of paying one each.
//
// A committing statement (or COMMIT) applies its effects to the live
// catalog under db.mu, encodes its WAL batch, enqueues a commitReq — a
// non-blocking operation — publishes the snapshot, releases the lock and
// then blocks on the request's done channel. A dedicated loop goroutine
// drains the queue and appends every waiting batch with a single
// wal.Append call — one write, one fsync — fanning the result (nil or
// the append error) out to every waiter. Under contention the fsync cost
// amortises across the group: fsyncs/commit drops below 1, which is the
// whole point.
//
// Visibility vs durability: effects become visible to readers at apply
// time (publish under db.mu) and the client is acknowledged after the
// group fsync. The commit-window contract is unchanged from the
// serialized path — crash recovery replays exactly the batches the log
// holds, and every acknowledged commit is in the log — but a reader can
// now observe a commit an instant before its writer is acked. The
// serialized path has the same property (it publishes even when the
// flush fails); the crash matrices assert acked ⊆ replayed either way.
//
// Checkpoints run on the loop too, for a correctness reason rather than
// a convenience: a checkpoint folds the *live* catalog — including
// effects whose batches are still queued — and resets the log
// generation. If those queued batches were appended afterwards (to the
// fresh log) recovery would replay them on top of the folded state:
// a double-apply. checkpointOnLoop therefore flushes the queue to the
// outgoing log, under db.mu where the queue cannot grow, before folding.

// errCommitQueueClosed is returned to a writer that raced Close: the
// loop is gone, so the batch cannot be made durable.
var errCommitQueueClosed = errors.New("database closed: commit queue stopped")

// DefaultCommitQueue is the default maximum number of commit batches
// coalesced into one WAL fsync. The queue itself is unbounded (each
// writer has at most one request in flight, so it is naturally bounded
// by the number of concurrent sessions); the cap only bounds how much
// one group can defer the next group's waiters.
const DefaultCommitQueue = 256

// commitReq is one unit of work for the commit loop: either a commit
// batch to append+fsync, or (ckpt) a checkpoint barrier from Save.
// done is buffered so the loop never blocks acking an abandoned waiter.
type commitReq struct {
	batch []byte
	ckpt  bool
	done  chan error
}

// commitQueue is the unbounded FIFO between committers and the loop.
// Enqueue never blocks — committers hold db.mu while enqueueing, and a
// bounded queue could deadlock them against a loop that needs db.mu to
// checkpoint. notify is a 1-token wakeup, not a data channel.
type commitQueue struct {
	mu     sync.Mutex
	reqs   []*commitReq
	closed bool
	notify chan struct{}
	gate   chan struct{} // test hook: loop parks on it before draining
}

func newCommitQueue() *commitQueue {
	return &commitQueue{notify: make(chan struct{}, 1)}
}

func (q *commitQueue) enqueue(r *commitReq) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return errCommitQueueClosed
	}
	q.reqs = append(q.reqs, r)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
	return nil
}

// drain blocks until work is queued and returns all of it, or nil once
// the queue is closed and empty.
func (q *commitQueue) drain() []*commitReq {
	for {
		if g := q.gateCh(); g != nil {
			<-g
		}
		q.mu.Lock()
		if len(q.reqs) > 0 {
			reqs := q.reqs
			q.reqs = nil
			q.mu.Unlock()
			return reqs
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return nil
		}
		<-q.notify
	}
}

// takeAll empties the queue without blocking (checkpointOnLoop, under
// db.mu, where no enqueue can race).
func (q *commitQueue) takeAll() []*commitReq {
	q.mu.Lock()
	defer q.mu.Unlock()
	reqs := q.reqs
	q.reqs = nil
	return reqs
}

// close marks the queue closed (enqueue fails, drain returns nil once
// empty) and wakes the loop.
func (q *commitQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// setGate installs (or clears) the test gate the loop blocks on before
// each drain. Tests park the loop, pile several writers into the queue,
// then close the gate channel to release one combined group.
func (q *commitQueue) setGate(ch chan struct{}) {
	q.mu.Lock()
	q.gate = ch
	q.mu.Unlock()
}

func (q *commitQueue) gateCh() chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.gate
}

// startCommitLoopLocked starts the group-commit pipeline for a writable,
// directory-backed database. Called under db.mu (or before the DB is
// shared) from OpenDB and Promote; no-op when group commit is disabled.
func (db *DB) startCommitLoopLocked() {
	if db.commitGroup <= 0 || db.dir == "" || db.commitQ != nil {
		return
	}
	db.commitQ = newCommitQueue()
	db.commitDone = make(chan struct{})
	go db.commitLoop(db.commitQ)
}

// stopCommitLoop closes the queue and waits for the loop to drain and
// exit. After it returns the serialized paths own the WAL again.
func (db *DB) stopCommitLoop() {
	db.mu.Lock()
	q := db.commitQ
	db.commitQ = nil
	db.mu.Unlock()
	if q == nil {
		return
	}
	q.close()
	<-db.commitDone
}

// commitLoop is the leader: it drains the queue, appends waiting commit
// batches in fsync-sharing groups, runs checkpoint barriers (Save) and
// the background size-triggered checkpoint, and fans results out to the
// waiters. It owns db.wal — the only other writers to the field are
// OpenDB (before the loop starts), replica apply (no loop), and Close
// (after the loop stops).
func (db *DB) commitLoop(q *commitQueue) {
	defer close(db.commitDone)
	// stuck, once set, fails every later group with the first append
	// failure instead of appending it: batches enqueued in the window
	// before the degraded latch became visible must not land in the log
	// after a missing batch, or recovery would replay state with a hole
	// in its history. A successful checkpoint (Save) re-converges memory
	// with disk and clears it.
	var stuck error
	for {
		reqs := q.drain()
		if reqs == nil {
			return
		}
		for len(reqs) > 0 {
			n := 0
			for n < len(reqs) && !reqs[n].ckpt {
				n++
			}
			stuck = db.appendGroups(reqs[:n], stuck, false)
			reqs = reqs[n:]
			if len(reqs) > 0 { // reqs[0] is a Save barrier
				stuck = db.checkpointOnLoop(q, reqs, stuck, true)
				reqs = nil
			}
		}
		stuck = db.checkpointOnLoop(q, nil, stuck, false)
	}
}

// appendGroups splits reqs into groups of at most commitGroup batches,
// each appended with a single fsync.
func (db *DB) appendGroups(reqs []*commitReq, stuck error, locked bool) error {
	for i := 0; i < len(reqs); i += db.commitGroup {
		j := min(i+db.commitGroup, len(reqs))
		stuck = db.appendGroup(reqs[i:j], stuck, locked)
	}
	return stuck
}

// appendGroup appends one group of commit batches as a single
// write+fsync and delivers the outcome to every waiter — the leader's
// fault is every follower's fault: on an append error all N waiters get
// the same ErrDegraded-wrapped result and none are acked as durable.
// locked says whether the caller already holds db.mu (checkpoint path).
func (db *DB) appendGroup(group []*commitReq, stuck error, locked bool) error {
	if len(group) == 0 {
		return stuck
	}
	err := stuck
	if err == nil {
		batches := make([][]byte, len(group))
		for i, r := range group {
			batches[i] = r.batch
		}
		if aerr := db.wal.Append(batches...); aerr != nil {
			// Same contract as the serialized flushWALLocked: the applied
			// effects are missing from the log, memory and disk diverged —
			// latch degraded so no later record references state the log
			// never saw. The waiters' error carries both the sentinel and
			// the cause.
			cause := fmt.Errorf("wal append: %v", aerr)
			if !locked {
				db.mu.Lock()
			}
			db.degradeLocked(cause)
			if !locked {
				db.mu.Unlock()
			}
			err = fmt.Errorf("%w: %v", ErrDegraded, cause)
		}
	}
	for _, r := range group {
		r.done <- err
	}
	return err
}

// checkpointOnLoop runs a checkpoint on the commit loop. carry is
// queue-ordered work the loop already drained (its first request is the
// Save barrier that forced the call); force distinguishes a barrier
// from the background size-triggered variant, which quietly skips when
// the threshold is not crossed or the database is mid-transaction or
// degraded. Before folding, every commit batch already applied and
// enqueued is appended to the outgoing log — under db.mu the queue
// cannot grow (enqueueing requires the lock), and folding effects whose
// batches would otherwise land in the fresh generation would make
// recovery apply them twice.
func (db *DB) checkpointOnLoop(q *commitQueue, carry []*commitReq, stuck error, force bool) error {
	db.mu.Lock()
	if !force && (db.ckptBytes <= 0 || db.wal == nil || db.txn != nil ||
		db.degraded != nil || db.wal.Size() <= db.ckptBytes) {
		db.mu.Unlock()
		return stuck
	}
	all := append(carry, q.takeAll()...)
	var barriers, commits []*commitReq
	for _, r := range all {
		if r.ckpt {
			barriers = append(barriers, r)
		} else {
			commits = append(commits, r)
		}
	}
	stuck = db.appendGroups(commits, stuck, true)
	err := db.checkpointLocked()
	if err == nil {
		stuck = nil
	}
	db.mu.Unlock()
	for _, r := range barriers {
		r.done <- err
	}
	return stuck
}

// enqueueCommitLocked encodes the pending WAL records of the finished
// statement or transaction as one batch and hands it to the commit
// loop, returning the request the caller must wait on after releasing
// db.mu. A nil request means there is nothing to make durable.
func (db *DB) enqueueCommitLocked() (*commitReq, error) {
	if db.wal == nil || len(db.walPending) == 0 {
		db.walPending = db.walPending[:0]
		return nil, nil
	}
	req := &commitReq{batch: encodeBatch(db.walPending), done: make(chan error, 1)}
	db.walPending = db.walPending[:0]
	if err := db.commitQ.enqueue(req); err != nil {
		db.degradeLocked(err)
		return nil, err
	}
	db.commits++
	return req, nil
}

// commitBoundaryLocked is the autocommit durability+publication
// boundary shared by execStmtCtx and the bulk-load path: group mode
// enqueues the batch (the caller waits on the returned request after
// unlocking); serialized mode appends+fsyncs inline and may trigger an
// inline checkpoint, exactly the pre-group-commit behaviour.
func (db *DB) commitBoundaryLocked() (*commitReq, error) {
	if db.commitQ != nil {
		req, err := db.enqueueCommitLocked()
		if len(db.dirty) > 0 {
			db.publishLocked()
		}
		return req, err
	}
	ferr := db.flushWALLocked()
	if len(db.dirty) > 0 {
		db.publishLocked()
	}
	if ferr != nil {
		return nil, ferr
	}
	// No automatic checkpoint once degraded: it would persist the very
	// statement the caller was just told failed (and silently lift the
	// read-only state). Only an explicit Save/Close may re-converge
	// after a WAL failure.
	if db.degraded == nil {
		if cerr := db.maybeCheckpointLocked(); cerr != nil {
			return nil, cerr
		}
	}
	return nil, nil
}

// takePendingCommitLocked collects the commit request a nested path
// (txnStmt's COMMIT) registered for the statement boundary to wait on.
func (db *DB) takePendingCommitLocked() (*commitReq, string) {
	req, msg := db.pendingCommit, db.pendingMsg
	db.pendingCommit, db.pendingMsg = nil, ""
	return req, msg
}

// CommitStats returns the number of durable commit batches issued and
// the number of WAL fsyncs spent on them since open (across log
// generations). commits/syncs > 1 means group commit is amortising;
// the N-writer benchmark reports syncs/commits as fsyncs/commit.
func (db *DB) CommitStats() (commits, syncs int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	syncs = db.syncsRetired
	if db.wal != nil {
		syncs += db.wal.Syncs()
	}
	return db.commits, syncs
}

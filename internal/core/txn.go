package core

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/shape"
	"repro/internal/sql/ast"
)

// txn is an explicit transaction's undo log. The engine runs under a
// single-writer lock, so the log only needs to support rollback: before
// the first mutation of an object inside the transaction, a deep snapshot
// of its storage is taken; ROLLBACK restores the snapshots and reverses
// DDL.
type txn struct {
	created       []string
	droppedTables map[string]*catalog.Table
	droppedArrays map[string]*catalog.Array
	tableSnaps    map[string]*tableSnap
	arraySnaps    map[string]*arraySnap

	// freshDirty records every checkpoint-dirty upgrade this transaction
	// caused (clean → dirty, or meta-dirty → data-dirty); ROLLBACK
	// restores the prior marks in reverse so the next checkpoint does not
	// rewrite segments that still match disk.
	freshDirty []dirtyMark
}

// dirtyMark is the pre-transaction checkpoint-dirty state of one object.
type dirtyMark struct {
	name string
	had  bool // present in ckptDirty at all
	data bool // its previous data-dirty level
}

type tableSnap struct {
	bats    []*bat.BAT
	deleted *bat.Bitmap
}

type arraySnap struct {
	shape     shape.Shape
	attrBats  []*bat.BAT
	dimBats   []*bat.BAT
	unbounded []bool
}

func newTxn() *txn {
	return &txn{
		droppedTables: map[string]*catalog.Table{},
		droppedArrays: map[string]*catalog.Array{},
		tableSnaps:    map[string]*tableSnap{},
		arraySnaps:    map[string]*arraySnap{},
	}
}

// txnStmt implements START TRANSACTION / COMMIT / ROLLBACK for a session.
// The engine supports one explicit transaction at a time; it is owned by
// the session that opened it (other sessions' writes are rejected at the
// router, their reads keep executing against the pre-transaction
// snapshot).
func (db *DB) txnStmt(sess *Session, s *ast.Txn) (*Result, error) {
	switch s.Kind {
	case ast.TxnBegin:
		if db.txn != nil {
			return nil, fmt.Errorf("a transaction is already in progress")
		}
		db.txn = newTxn()
		db.txnOwner = sess
		return statusResult("transaction started"), nil
	case ast.TxnCommit:
		if db.txn == nil {
			return nil, fmt.Errorf("no transaction in progress")
		}
		db.txn = nil
		db.txnOwner = nil
		if db.commitQ != nil {
			// Group commit: the transaction's queued effect records become
			// one batch on the commit queue; the statement boundary
			// (execWrite) waits for the loop's fsync after releasing the
			// lock, wrapping a failure in the same "committed but not
			// persisted" contract as the serialized path.
			req, qerr := db.enqueueCommitLocked()
			db.publishLocked()
			if qerr != nil {
				return nil, fmt.Errorf("transaction committed but not persisted: %v", qerr)
			}
			db.pendingCommit = req
			db.pendingMsg = "transaction committed but not persisted"
			return statusResult("transaction committed"), nil
		}
		// Durability first, visibility second (same order as the
		// autocommit boundary): the transaction's queued effect records
		// become one fsynced WAL batch — O(delta), not a database rewrite
		// — before the snapshot is published to concurrent readers.
		// In-memory databases have no log and skip the flush.
		flushErr := db.flushWALLocked()
		db.publishLocked()
		if flushErr != nil {
			return nil, fmt.Errorf("transaction committed but not persisted: %v", flushErr)
		}
		if err := db.maybeCheckpointLocked(); err != nil {
			return nil, fmt.Errorf("transaction committed but checkpoint failed: %v", err)
		}
		return statusResult("transaction committed"), nil
	case ast.TxnRollback:
		if db.txn == nil {
			return nil, fmt.Errorf("no transaction in progress")
		}
		db.txn.rollback(db)
		db.txn = nil
		db.txnOwner = nil
		// Rolled-back work never reaches the log.
		db.discardWALPending()
		// Re-publish the restored state: the undo log swapped fresh
		// clones into the live catalog for every object the transaction
		// touched.
		db.publishLocked()
		return statusResult("transaction rolled back"), nil
	default:
		return nil, fmt.Errorf("unknown transaction statement")
	}
}

func (t *txn) rollback(db *DB) {
	// Remove objects created inside the transaction.
	for _, name := range t.created {
		if _, ok := db.cat.Table(name); ok {
			_ = db.cat.DropTable(name)
		}
		if _, ok := db.cat.Array(name); ok {
			_ = db.cat.DropArray(name)
		}
	}
	// Restore dropped objects.
	for _, tb := range t.droppedTables {
		_ = db.cat.AddTable(tb)
	}
	for _, a := range t.droppedArrays {
		_ = db.cat.AddArray(a)
	}
	// Restore modified storage in place.
	for name, snap := range t.tableSnaps {
		if tb, ok := db.cat.Table(name); ok {
			tb.Bats = snap.bats
			tb.Deleted = snap.deleted
		}
	}
	for name, snap := range t.arraySnaps {
		if a, ok := db.cat.Array(name); ok {
			a.Shape = snap.shape
			a.AttrBats = snap.attrBats
			a.DimBats = snap.dimBats
			a.Unbounded = snap.unbounded
		}
	}
	// Everything is back to its pre-transaction state: restore the
	// checkpoint-dirty marks the transaction upgraded (in reverse, so
	// multi-step upgrades unwind to the original level).
	for i := len(t.freshDirty) - 1; i >= 0; i-- {
		m := t.freshDirty[i]
		if m.had {
			db.ckptDirty[m.name] = m.data
		} else {
			delete(db.ckptDirty, m.name)
		}
	}
}

// noteCreate records an object created inside the transaction. It also
// marks the name dirty for snapshot publication.
func (db *DB) noteCreate(name string) {
	db.touch(name)
	if db.txn != nil {
		db.txn.created = append(db.txn.created, name)
	}
}

// noteDropTable snapshots a table being dropped inside the transaction.
func (db *DB) noteDropTable(t *catalog.Table) {
	db.touch(t.Name)
	if db.txn != nil {
		db.txn.droppedTables[t.Name] = t
	}
}

// noteDropArray snapshots an array being dropped inside the transaction.
func (db *DB) noteDropArray(a *catalog.Array) {
	db.touch(a.Name)
	if db.txn != nil {
		db.txn.droppedArrays[a.Name] = a
	}
}

// stampMod assigns the next value of the database-wide modification
// sequence to an object's Mod counter. A shared monotonic sequence —
// rather than a per-object increment — makes Mod equality a proof of
// content identity across object incarnations too: a DROP + CREATE
// under the same name gets a fresh stamp that a stale optimistic
// snapshot of the old incarnation can never match.
func (db *DB) stampMod(mod *uint64) {
	db.modSeq++
	*mod = db.modSeq
}

// noteModifyTable snapshots a table before its first in-transaction write.
// It also stamps the table's modification counter — always before the
// mutation itself, so an optimistic writer whose snapshot Mod still
// matches the live one is guaranteed the content is unchanged too.
func (db *DB) noteModifyTable(t *catalog.Table) {
	db.stampMod(&t.Mod)
	db.touch(t.Name)
	db.snapTable(t)
}

// noteDeleteTable is noteModifyTable for DELETE, which only flips bits in
// the deletion mask: the table must re-publish and re-manifest, but its
// segment files still match and the next checkpoint need not rewrite them.
func (db *DB) noteDeleteTable(t *catalog.Table) {
	db.stampMod(&t.Mod)
	db.touchMeta(t.Name)
	db.snapTable(t)
}

func (db *DB) snapTable(t *catalog.Table) {
	if db.txn == nil {
		return
	}
	if _, done := db.txn.tableSnaps[t.Name]; done {
		return
	}
	snap := &tableSnap{deleted: t.Deleted.Clone()}
	for _, b := range t.Bats {
		snap.bats = append(snap.bats, b.Clone())
	}
	db.txn.tableSnaps[t.Name] = snap
}

// noteModifyArray snapshots an array before its first in-transaction write.
// Stamps the array's modification counter first; see noteModifyTable.
func (db *DB) noteModifyArray(a *catalog.Array) {
	db.stampMod(&a.Mod)
	db.touch(a.Name)
	if db.txn == nil {
		return
	}
	if _, done := db.txn.arraySnaps[a.Name]; done {
		return
	}
	snap := &arraySnap{
		shape:     append(shape.Shape{}, a.Shape...),
		unbounded: append([]bool{}, a.Unbounded...),
	}
	for _, b := range a.AttrBats {
		snap.attrBats = append(snap.attrBats, b.Clone())
	}
	for _, b := range a.DimBats {
		snap.dimBats = append(snap.dimBats, b.Clone())
	}
	db.txn.arraySnaps[a.Name] = snap
}

package core

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/shape"
	"repro/internal/sql/ast"
)

// txn is an explicit transaction's undo log. The engine runs under a
// single-writer lock, so the log only needs to support rollback: before
// the first mutation of an object inside the transaction, a deep snapshot
// of its storage is taken; ROLLBACK restores the snapshots and reverses
// DDL.
type txn struct {
	created       []string
	droppedTables map[string]*catalog.Table
	droppedArrays map[string]*catalog.Array
	tableSnaps    map[string]*tableSnap
	arraySnaps    map[string]*arraySnap
}

type tableSnap struct {
	bats    []*bat.BAT
	deleted *bat.Bitmap
}

type arraySnap struct {
	shape     shape.Shape
	attrBats  []*bat.BAT
	dimBats   []*bat.BAT
	unbounded []bool
}

func newTxn() *txn {
	return &txn{
		droppedTables: map[string]*catalog.Table{},
		droppedArrays: map[string]*catalog.Array{},
		tableSnaps:    map[string]*tableSnap{},
		arraySnaps:    map[string]*arraySnap{},
	}
}

// txnStmt implements START TRANSACTION / COMMIT / ROLLBACK for a session.
// The engine supports one explicit transaction at a time; it is owned by
// the session that opened it (other sessions' writes are rejected at the
// router, their reads keep executing against the pre-transaction
// snapshot).
func (db *DB) txnStmt(sess *Session, s *ast.Txn) (*Result, error) {
	switch s.Kind {
	case ast.TxnBegin:
		if db.txn != nil {
			return nil, fmt.Errorf("a transaction is already in progress")
		}
		db.txn = newTxn()
		db.txnOwner = sess
		return statusResult("transaction started"), nil
	case ast.TxnCommit:
		if db.txn == nil {
			return nil, fmt.Errorf("no transaction in progress")
		}
		db.txn = nil
		db.txnOwner = nil
		wrote := len(db.dirty) > 0
		db.publishLocked()
		// Durability: committed work must survive the process, not wait
		// for the next implicit save. In-memory databases skip this.
		if wrote && db.dir != "" {
			if err := db.save(); err != nil {
				return nil, fmt.Errorf("transaction committed but not persisted: %v", err)
			}
		}
		return statusResult("transaction committed"), nil
	case ast.TxnRollback:
		if db.txn == nil {
			return nil, fmt.Errorf("no transaction in progress")
		}
		db.txn.rollback(db)
		db.txn = nil
		db.txnOwner = nil
		// Re-publish the restored state: the undo log swapped fresh
		// clones into the live catalog for every object the transaction
		// touched.
		db.publishLocked()
		return statusResult("transaction rolled back"), nil
	default:
		return nil, fmt.Errorf("unknown transaction statement")
	}
}

func (t *txn) rollback(db *DB) {
	// Remove objects created inside the transaction.
	for _, name := range t.created {
		if _, ok := db.cat.Table(name); ok {
			_ = db.cat.DropTable(name)
		}
		if _, ok := db.cat.Array(name); ok {
			_ = db.cat.DropArray(name)
		}
	}
	// Restore dropped objects.
	for _, tb := range t.droppedTables {
		_ = db.cat.AddTable(tb)
	}
	for _, a := range t.droppedArrays {
		_ = db.cat.AddArray(a)
	}
	// Restore modified storage in place.
	for name, snap := range t.tableSnaps {
		if tb, ok := db.cat.Table(name); ok {
			tb.Bats = snap.bats
			tb.Deleted = snap.deleted
		}
	}
	for name, snap := range t.arraySnaps {
		if a, ok := db.cat.Array(name); ok {
			a.Shape = snap.shape
			a.AttrBats = snap.attrBats
			a.DimBats = snap.dimBats
			a.Unbounded = snap.unbounded
		}
	}
}

// noteCreate records an object created inside the transaction. It also
// marks the name dirty for snapshot publication.
func (db *DB) noteCreate(name string) {
	db.touch(name)
	if db.txn != nil {
		db.txn.created = append(db.txn.created, name)
	}
}

// noteDropTable snapshots a table being dropped inside the transaction.
func (db *DB) noteDropTable(t *catalog.Table) {
	db.touch(t.Name)
	if db.txn != nil {
		db.txn.droppedTables[t.Name] = t
	}
}

// noteDropArray snapshots an array being dropped inside the transaction.
func (db *DB) noteDropArray(a *catalog.Array) {
	db.touch(a.Name)
	if db.txn != nil {
		db.txn.droppedArrays[a.Name] = a
	}
}

// noteModifyTable snapshots a table before its first in-transaction write.
func (db *DB) noteModifyTable(t *catalog.Table) {
	db.touch(t.Name)
	if db.txn == nil {
		return
	}
	if _, done := db.txn.tableSnaps[t.Name]; done {
		return
	}
	snap := &tableSnap{deleted: t.Deleted.Clone()}
	for _, b := range t.Bats {
		snap.bats = append(snap.bats, b.Clone())
	}
	db.txn.tableSnaps[t.Name] = snap
}

// noteModifyArray snapshots an array before its first in-transaction write.
func (db *DB) noteModifyArray(a *catalog.Array) {
	db.touch(a.Name)
	if db.txn == nil {
		return
	}
	if _, done := db.txn.arraySnaps[a.Name]; done {
		return
	}
	snap := &arraySnap{
		shape:     append(shape.Shape{}, a.Shape...),
		unbounded: append([]bool{}, a.Unbounded...),
	}
	for _, b := range a.AttrBats {
		snap.attrBats = append(snap.attrBats, b.Clone())
	}
	for _, b := range a.DimBats {
		snap.dimBats = append(snap.dimBats, b.Clone())
	}
	db.txn.arraySnaps[a.Name] = snap
}

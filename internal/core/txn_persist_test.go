package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCommitPersists is the regression test for the lost-commit bug:
// COMMIT used to drop the undo log without calling save, so committed
// work vanished if the process exited before the next implicit save.
// A directory-backed database must persist on COMMIT itself.
func TestCommitPersists(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)
	if _, err := db.Exec(`BEGIN; INSERT INTO t VALUES (2); UPDATE t SET a = a * 10; COMMIT`); err != nil {
		t.Fatal(err)
	}
	// Note: no Close, no Save — simulating a process that exits (or
	// crashes) right after COMMIT.

	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	r, err := db2.Query(`SELECT SUM(a), COUNT(*) FROM t`)
	if err != nil {
		t.Fatalf("committed table missing after reopen: %v", err)
	}
	sum, _ := r.Value(0, 0).AsInt()
	cnt, _ := r.Value(0, 1).AsInt()
	if sum != 30 || cnt != 2 {
		t.Fatalf("reopened state SUM=%d COUNT=%d, want 30/2 (commit lost)", sum, cnt)
	}
}

// TestCloseFlushesCheckpoint is the regression test for unbounded WAL
// growth: Close on a directory-backed database must fold the log into
// the segment store (final checkpoint), so restart cycles start from an
// empty log instead of replaying — and re-accumulating — history.
func TestCloseFlushesCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	const walHeader = 14
	for cycle := 0; cycle < 3; cycle++ {
		db, err := Open(dir)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if cycle == 0 {
			db.MustQuery(`CREATE TABLE t (a INT)`)
		}
		for i := 0; i < 10; i++ {
			db.MustQuery(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, cycle*10+i))
		}
		// Each cycle starts from a reset log, so every cycle's commits
		// must have appended records beyond the header.
		if grown := db.WALSize(); grown <= walHeader {
			t.Fatalf("cycle %d: wal did not grow during commits (size %d)", cycle, grown)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("cycle %d: close: %v", cycle, err)
		}
		fi, err := os.Stat(filepath.Join(dir, "wal.log"))
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		// Header only: every commit was folded into segment files.
		if fi.Size() >= 64 {
			t.Fatalf("cycle %d: wal.log is %d bytes after Close, want header-only (final checkpoint missing)", cycle, fi.Size())
		}
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r := db.MustQuery(`SELECT COUNT(*), SUM(a) FROM t`)
	cnt, _ := r.Value(0, 0).AsInt()
	sum, _ := r.Value(0, 1).AsInt()
	if cnt != 30 || sum != 435 {
		t.Fatalf("after 3 close/reopen cycles COUNT=%d SUM=%d, want 30/435", cnt, sum)
	}
}

// TestRollbackDoesNotPersist is the counterpart: rolled-back work must
// not hit the disk.
func TestRollbackDoesNotPersist(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`BEGIN; UPDATE t SET a = 999; ROLLBACK`); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, _ := db2.MustQuery(`SELECT a FROM t`).Value(0, 0).AsInt()
	if v != 1 {
		t.Fatalf("rolled-back value persisted: a = %d, want 1", v)
	}
}

package core

import (
	"path/filepath"
	"testing"
)

// TestCommitPersists is the regression test for the lost-commit bug:
// COMMIT used to drop the undo log without calling save, so committed
// work vanished if the process exited before the next implicit save.
// A directory-backed database must persist on COMMIT itself.
func TestCommitPersists(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)
	if _, err := db.Exec(`BEGIN; INSERT INTO t VALUES (2); UPDATE t SET a = a * 10; COMMIT`); err != nil {
		t.Fatal(err)
	}
	// Note: no Close, no Save — simulating a process that exits (or
	// crashes) right after COMMIT.

	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	r, err := db2.Query(`SELECT SUM(a), COUNT(*) FROM t`)
	if err != nil {
		t.Fatalf("committed table missing after reopen: %v", err)
	}
	sum, _ := r.Value(0, 0).AsInt()
	cnt, _ := r.Value(0, 1).AsInt()
	if sum != 30 || cnt != 2 {
		t.Fatalf("reopened state SUM=%d COUNT=%d, want 30/2 (commit lost)", sum, cnt)
	}
}

// TestRollbackDoesNotPersist is the counterpart: rolled-back work must
// not hit the disk.
func TestRollbackDoesNotPersist(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`BEGIN; UPDATE t SET a = 999; ROLLBACK`); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, _ := db2.MustQuery(`SELECT a FROM t`).Value(0, 0).AsInt()
	if v != 1 {
		t.Fatalf("rolled-back value persisted: a = %d, want 1", v)
	}
}

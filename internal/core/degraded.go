package core

import (
	"errors"
	"fmt"
	"log"
)

// Read-only degraded mode. A durability-affecting write error — a failed
// WAL append or fsync, a short write from a full disk, a checkpoint that
// could not publish its segments or manifest — means the in-memory state
// and the on-disk state may have diverged, so the engine latches into a
// sticky degraded mode rather than compounding the divergence:
//
//   - reads keep serving the last published snapshot (nothing about it
//     is suspect — it was built before the fault);
//   - writes fail with an error wrapping ErrDegraded, carrying the
//     original cause;
//   - /healthz (via DB.Degraded) reports "degraded" with the cause;
//   - recovery is explicit: a successful Save (the full state folds into
//     a fresh checkpoint, re-converging disk with memory) or reopening
//     the database (recovers to the last durable commit) clears it.
//
// The mode latches once: later faults while already degraded do not
// replace the recorded first cause, which is the one the operator needs.

// ErrDegraded marks every write rejected while the database is in
// read-only degraded mode; test with errors.Is.
var ErrDegraded = errors.New("database is read-only (degraded)")

// ErrReadOnly marks every write rejected by policy: the -read-only flag
// or replica mode. Unlike ErrDegraded it is not a fault — the store is
// healthy, writes are simply not this node's job. Test with errors.Is.
var ErrReadOnly = errors.New("database is read-only")

// Degraded returns the cause that latched read-only degraded mode, or
// nil when the database is healthy. Safe for concurrent use.
func (db *DB) Degraded() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.degraded
}

// degradeLocked latches degraded mode with the given cause (first cause
// wins). Must be called under the writer lock.
func (db *DB) degradeLocked(cause error) {
	if db.degraded != nil {
		return
	}
	db.degraded = cause
	log.Printf("sciql: entering read-only degraded mode: %v", cause)
}

// writeBlockedErr returns the refusal every write path must surface
// while degraded, read-only or a replica (nil otherwise). Must be called
// under the writer lock (read or write).
func (db *DB) writeBlockedErr() error {
	if db.readOnly != "" {
		return fmt.Errorf("%w (%s)", ErrReadOnly, db.readOnly)
	}
	if db.degraded == nil {
		return nil
	}
	return fmt.Errorf("%w: %v; Save() or reopen to recover", ErrDegraded, db.degraded)
}

package core

import (
	"fmt"
	"strings"

	"repro/internal/bat"
	"repro/internal/gdk"
	"repro/internal/mal"
	"repro/internal/shape"
	"repro/internal/types"
)

// Result is the outcome of one statement. Query results carry aligned
// columns; when the projection contains SciQL dimensional items `[expr]`
// the result is an array (IsArray) with a concrete Shape: the columns are
// then cell-aligned (dimension columns first, in Fig. 3 series layout).
type Result struct {
	Names []string
	Kinds []types.Kind
	Dims  []bool
	Cols  []*bat.BAT

	IsArray bool
	Shape   shape.Shape

	// Affected is the row/cell count touched by a DML statement.
	Affected int
	// Text carries EXPLAIN/PLAN and status output.
	Text string
}

func textResult(s string) *Result { return &Result{Text: s} }

func statusResult(format string, args ...any) *Result {
	return &Result{Text: fmt.Sprintf(format, args...)}
}

// NumRows returns the number of rows (cells for array results).
func (r *Result) NumRows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Len()
}

// NumCols returns the number of columns.
func (r *Result) NumCols() int { return len(r.Cols) }

// Value returns the value at (row, col).
func (r *Result) Value(row, col int) types.Value { return r.Cols[col].Get(row) }

// Row returns one row as values.
func (r *Result) Row(i int) []types.Value {
	out := make([]types.Value, len(r.Cols))
	for c := range r.Cols {
		out[c] = r.Cols[c].Get(i)
	}
	return out
}

// assembleResult converts an executed MAL program into a Result, applying
// SciQL table→array coercion when the projection has dimensional items.
func assembleResult(prog *mal.Program, ctx *mal.Ctx) (*Result, error) {
	res := &Result{
		Names: prog.ResultNames,
		Kinds: prog.ResultKinds,
		Dims:  prog.ResultDims,
	}
	for _, v := range prog.ResultVars {
		b, ok := ctx.Vars[v].(*bat.BAT)
		if !ok {
			return nil, fmt.Errorf("result variable X_%d is not a column", v)
		}
		res.Cols = append(res.Cols, b)
	}
	hasDims := false
	for _, d := range res.Dims {
		if d {
			hasDims = true
		}
	}
	if !hasDims {
		return res, nil
	}
	return coerceToArray(res, prog.ShapeHint)
}

// coerceToArray builds an array result: dimension bounds come from the
// preserved shape hint when available, otherwise they are derived from the
// dimension columns (§2: "an unbounded array with actual size derived from
// the dimension column expressions"). Cells not present in the rows stay
// NULL; duplicate positions keep the last row.
func coerceToArray(r *Result, hint shape.Shape) (*Result, error) {
	var dimIdx, attrIdx []int
	for i, d := range r.Dims {
		if d {
			dimIdx = append(dimIdx, i)
		} else {
			attrIdx = append(attrIdx, i)
		}
	}
	n := r.NumRows()
	// Derive the shape.
	var sh shape.Shape
	if hint != nil && len(hint) == len(dimIdx) {
		sh = hint
	} else {
		sh = make(shape.Shape, len(dimIdx))
		for k, ci := range dimIdx {
			col := r.Cols[ci]
			if col.ValueKind() != types.KindInt && col.ValueKind() != types.KindOID {
				return nil, fmt.Errorf("dimension column %q must be integer, got %s", r.Names[ci], col.ValueKind())
			}
			var lo, hi int64
			seen := false
			for i := 0; i < n; i++ {
				if col.IsNull(i) {
					return nil, fmt.Errorf("NULL value in dimension column %q", r.Names[ci])
				}
				v := col.Get(i).Int64()
				if !seen {
					lo, hi, seen = v, v, true
				} else {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
			}
			if !seen {
				lo, hi = 0, -1 // empty array
			}
			step := inferStep(col, lo)
			sh[k] = shape.Dim{Name: r.Names[ci], Start: lo, Step: step, Stop: hi + step}
		}
	}

	out := &Result{IsArray: true, Shape: sh}
	cells := sh.Cells()
	// Dimension columns in series layout.
	dims, err := gdk.DimBATs(sh)
	if err != nil {
		return nil, err
	}
	for k, ci := range dimIdx {
		out.Names = append(out.Names, r.Names[ci])
		out.Kinds = append(out.Kinds, types.KindInt)
		out.Dims = append(out.Dims, true)
		out.Cols = append(out.Cols, dims[k])
	}
	// Attribute columns: scatter rows into cells.
	coords := make([]int64, len(dimIdx))
	for _, ci := range attrIdx {
		col := r.Cols[ci]
		cell, err := bat.Filler(cells, types.NullUnknown(), col.ValueKind())
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			for k, di := range dimIdx {
				coords[k] = r.Cols[di].Get(i).Int64()
			}
			p, ok := sh.Pos(coords)
			if !ok {
				// Rows outside the hinted shape are dropped (they fall outside
				// the array's dimension ranges).
				continue
			}
			if col.IsNull(i) {
				cell.SetNull(p, true)
			} else if err := cell.Replace(p, col.Get(i)); err != nil {
				return nil, err
			}
		}
		out.Names = append(out.Names, r.Names[ci])
		out.Kinds = append(out.Kinds, col.ValueKind())
		out.Dims = append(out.Dims, false)
		out.Cols = append(out.Cols, cell)
	}
	return out, nil
}

// inferStep derives a dimension step from the column values: the GCD of
// all offsets from the minimum (1 when indeterminate).
func inferStep(col *bat.BAT, lo int64) int64 {
	g := int64(0)
	for i := 0; i < col.Len(); i++ {
		d := col.Get(i).Int64() - lo
		if d < 0 {
			d = -d
		}
		g = gcd(g, d)
	}
	if g == 0 {
		return 1
	}
	return g
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// String renders the result: DML/status text, or a column-aligned table.
func (r *Result) String() string {
	if r.Text != "" {
		return r.Text
	}
	var sb strings.Builder
	widths := make([]int, len(r.Names))
	rows := r.NumRows()
	cells := make([][]string, rows)
	for i := range widths {
		name := r.Names[i]
		if i < len(r.Dims) && r.Dims[i] {
			name = "[" + name + "]"
		}
		widths[i] = len(name)
	}
	for i := 0; i < rows; i++ {
		cells[i] = make([]string, len(r.Cols))
		for c := range r.Cols {
			s := r.Cols[c].Get(i).String()
			cells[i][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for c, name := range r.Names {
		if c > 0 {
			sb.WriteString(" | ")
		}
		if c < len(r.Dims) && r.Dims[c] {
			name = "[" + name + "]"
		}
		fmt.Fprintf(&sb, "%-*s", widths[c], name)
	}
	sb.WriteString("\n")
	for c := range r.Names {
		if c > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", widths[c]))
	}
	sb.WriteString("\n")
	for i := 0; i < rows; i++ {
		for c := range r.Cols {
			if c > 0 {
				sb.WriteString(" | ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[c], cells[i][c])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Grid renders a 2-D single-attribute array result as a coordinate grid
// (rows = second dimension descending, like the paper's Fig. 1), with
// "null" for holes.
func (r *Result) Grid() (string, error) {
	if !r.IsArray || len(r.Shape) != 2 {
		return "", fmt.Errorf("grid rendering needs a 2-D array result")
	}
	attr := -1
	for i, d := range r.Dims {
		if !d {
			if attr >= 0 {
				return "", fmt.Errorf("grid rendering needs exactly one attribute")
			}
			attr = i
		}
	}
	if attr < 0 {
		return "", fmt.Errorf("grid rendering needs an attribute column")
	}
	col := r.Cols[attr]
	dx, dy := r.Shape[0], r.Shape[1]
	var sb strings.Builder
	for yi := dy.N() - 1; yi >= 0; yi-- {
		y := dy.Value(yi)
		vals := make([]string, dx.N())
		for xi := 0; xi < dx.N(); xi++ {
			p, _ := r.Shape.Pos([]int64{dx.Value(xi), y})
			vals[xi] = col.Get(p).String()
		}
		fmt.Fprintf(&sb, "y=%-4d %s\n", y, strings.Join(vals, "\t"))
	}
	return sb.String(), nil
}

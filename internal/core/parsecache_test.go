package core

import (
	"fmt"
	"testing"
)

func TestParseCacheHitsRepeatedStatements(t *testing.T) {
	db := New()
	if _, err := db.Exec(`CREATE TABLE t (a INT, b INT)`); err != nil {
		t.Fatal(err)
	}
	db.pcache.purge()
	q := `SELECT a + b FROM t`
	for i := 0; i < 3; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.pcache.len(); got != 1 {
		t.Fatalf("cache has %d entries, want 1", got)
	}
	if _, ok := db.pcache.get(cacheKey(q)); !ok {
		t.Fatalf("expected %q to be cached under the current join-order mode", q)
	}
	// The key includes the join-order mode: the raw text alone must miss.
	if _, ok := db.pcache.get(q); ok {
		t.Fatalf("raw query text should not be a cache key")
	}
}

func TestParseCachePurgedOnDDL(t *testing.T) {
	db := New()
	if _, err := db.Exec(`CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT a FROM t`); err != nil {
		t.Fatal(err)
	}
	if db.pcache.len() == 0 {
		t.Fatal("expected cached SELECT before DDL")
	}
	if _, err := db.Exec(`CREATE TABLE u (b INT)`); err != nil {
		t.Fatal(err)
	}
	if got := db.pcache.len(); got != 0 {
		t.Fatalf("cache has %d entries after DDL, want 0", got)
	}
	// Dropping an object must also invalidate.
	if _, err := db.Query(`SELECT a FROM t`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DROP TABLE u`); err != nil {
		t.Fatal(err)
	}
	if got := db.pcache.len(); got != 0 {
		t.Fatalf("cache has %d entries after DROP, want 0", got)
	}
}

func TestParseCacheReusedASTExecutesCorrectly(t *testing.T) {
	db := New()
	if _, err := db.Exec(`CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	q := `SELECT SUM(a) FROM t`
	for i := 0; i < 3; i++ {
		r, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Value(0, 0).String(); got != "6" {
			t.Fatalf("run %d: SUM(a) = %s, want 6", i, got)
		}
	}
	// Mutate the data and re-run the cached statement: results must track
	// the storage, proving the AST is not holding stale state.
	if _, err := db.Exec(`INSERT INTO t VALUES (10)`); err != nil {
		t.Fatal(err)
	}
	r, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Value(0, 0).String(); got != "16" {
		t.Fatalf("after insert: SUM(a) = %s, want 16", got)
	}
}

func TestParseCacheEviction(t *testing.T) {
	c := newParseCache()
	for i := 0; i < parseCacheSize+10; i++ {
		c.put(fmt.Sprintf("SELECT %d", i), nil)
	}
	if got := c.len(); got != parseCacheSize {
		t.Fatalf("cache has %d entries, want cap %d", got, parseCacheSize)
	}
	if _, ok := c.get("SELECT 0"); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := c.get(fmt.Sprintf("SELECT %d", parseCacheSize+9)); !ok {
		t.Fatal("newest entry should be cached")
	}
}

package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vfs"
	"repro/internal/wal"
)

// openReplica opens a fresh replica database in its own directory.
func openReplica(t *testing.T, fsys vfs.FS) (*DB, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "replica")
	db, err := OpenDB(dir, OpenOptions{FS: fsys, Replica: true})
	if err != nil {
		t.Fatalf("open replica: %v", err)
	}
	return db, dir
}

// syncReplica streams the primary's log into the replica through the same
// chunk/frame/apply path the network tailer uses, until caught up.
func syncReplica(t *testing.T, primary, replica *DB) {
	t.Helper()
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("replica not catching up")
		}
		pos := replica.WALPosition()
		data, ppos, err := primary.ReadWALChunk(pos.Gen, pos.Offset, 512)
		if errors.Is(err, wal.ErrGenMismatch) {
			spos, files, serr := primary.ReplSnapshot()
			if serr != nil {
				t.Fatalf("snapshot: %v", serr)
			}
			if ierr := replica.InstallSnapshot(spos, files); ierr != nil {
				t.Fatalf("install: %v", ierr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("chunk at %+v: %v", pos, err)
		}
		if len(data) == 0 {
			if pos.Offset != ppos.Offset {
				t.Fatalf("no data but lag remains: local %d, primary %d", pos.Offset, ppos.Offset)
			}
			return
		}
		payloads, _, err := wal.Frames(data)
		if err != nil {
			t.Fatalf("frames: %v", err)
		}
		if _, err := replica.ApplyReplicated(pos.Offset, payloads); err != nil {
			t.Fatalf("apply at %d: %v", pos.Offset, err)
		}
	}
}

// TestReplicateEndToEnd replays the crash-suite workload on a primary —
// including a mid-workload checkpoint, so the replica must bootstrap
// from a snapshot and then tail — and requires the replica to be
// fingerprint-identical, with a byte-identical log, while refusing SQL
// writes until promoted.
func TestReplicateEndToEnd(t *testing.T) {
	primDir := filepath.Join(t.TempDir(), "primary")
	primary, err := OpenWith(primDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	replica, _ := openReplica(t, nil)
	defer replica.Close()

	for i, stmt := range crashWorkload {
		if _, err := primary.Exec(stmt); err != nil {
			t.Fatalf("workload[%d]: %v", i, err)
		}
		if i == len(crashWorkload)/2 {
			if err := primary.Save(); err != nil { // generation reset mid-stream
				t.Fatal(err)
			}
		}
		syncReplica(t, primary, replica)
	}

	if got, want := fingerprintDB(replica), fingerprintDB(primary); got != want {
		t.Fatalf("replica diverged:\n--- replica ---\n%s\n--- primary ---\n%s", got, want)
	}
	if !replica.IsReplica() {
		t.Fatal("IsReplica() = false on a replica")
	}
	if _, err := replica.Query(`INSERT INTO kv VALUES (99, 'no', 0.0)`); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica write = %v, want ErrReadOnly", err)
	}

	// The replica's log is a byte prefix (here: exact copy) of the
	// primary's — the property the whole resume protocol rests on.
	pb, err := os.ReadFile(filepath.Join(primDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(filepath.Join(replica.dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, rb) {
		t.Fatalf("replica log (%d bytes) is not byte-identical to primary log (%d bytes)", len(rb), len(pb))
	}
}

// TestApplyReplicatedIdempotent re-delivers already-applied frames (the
// normal aftermath of a reconnect) and requires them to be skipped
// without effect; partial overlap applies only the fresh suffix.
func TestApplyReplicatedIdempotent(t *testing.T) {
	primDir := filepath.Join(t.TempDir(), "primary")
	primary, err := OpenWith(primDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replica, _ := openReplica(t, nil)
	defer replica.Close()

	primary.MustQuery(`CREATE TABLE t (a INT)`)
	primary.MustQuery(`INSERT INTO t VALUES (1)`)
	primary.MustQuery(`INSERT INTO t VALUES (2)`)

	start := replica.WALPosition()
	data, _, err := primary.ReadWALChunk(start.Gen, start.Offset, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payloads, _, err := wal.Frames(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 3 {
		t.Fatalf("%d frames, want 3", len(payloads))
	}
	pos1, err := replica.ApplyReplicated(start.Offset, payloads)
	if err != nil {
		t.Fatal(err)
	}

	// Full re-delivery: every frame below the local end is skipped.
	pos2, err := replica.ApplyReplicated(start.Offset, payloads)
	if err != nil {
		t.Fatalf("re-apply: %v", err)
	}
	if pos2 != pos1 {
		t.Fatalf("re-apply moved the position: %+v -> %+v", pos1, pos2)
	}

	// Partial overlap: resend the last frame plus a genuinely new one.
	primary.MustQuery(`INSERT INTO t VALUES (3)`)
	lastOff := pos1.Offset - wal.FrameSize(len(payloads[2]))
	data, _, err = primary.ReadWALChunk(start.Gen, lastOff, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	overlap, _, err := wal.Frames(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(overlap) != 2 {
		t.Fatalf("%d overlap frames, want 2", len(overlap))
	}
	pos3, err := replica.ApplyReplicated(lastOff, overlap)
	if err != nil {
		t.Fatalf("overlap apply: %v", err)
	}
	if want := primary.WALPosition(); pos3 != want {
		t.Fatalf("after overlap apply at %+v, primary at %+v", pos3, want)
	}
	r := replica.MustQuery(`SELECT COUNT(*), SUM(a) FROM t`)
	if !strings.Contains(r.String(), "3") || !strings.Contains(r.String(), "6") {
		t.Fatalf("replica content wrong after re-delivery:\n%s", r)
	}
}

// TestApplyReplicatedRejectsGapAndStraddle: a stream that skips bytes or
// starts mid-frame is a protocol violation, never silently applied.
func TestApplyReplicatedRejectsGapAndStraddle(t *testing.T) {
	replica, _ := openReplica(t, nil)
	defer replica.Close()
	pos := replica.WALPosition()
	rec := []byte("not a real record but length is what matters")
	if _, err := replica.ApplyReplicated(pos.Offset+10, [][]byte{rec}); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap err = %v", err)
	}
	if _, err := replica.ApplyReplicated(pos.Offset-3, [][]byte{rec}); err == nil || !strings.Contains(err.Error(), "straddles") {
		t.Fatalf("straddle err = %v", err)
	}
}

// TestPromote: catching up and promoting opens the write path and
// checkpointing; promoting a primary is refused.
func TestPromote(t *testing.T) {
	primDir := filepath.Join(t.TempDir(), "primary")
	primary, err := OpenWith(primDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.MustQuery(`CREATE TABLE t (a INT)`)
	primary.MustQuery(`INSERT INTO t VALUES (7)`)

	replica, _ := openReplica(t, nil)
	defer replica.Close()
	syncReplica(t, primary, replica)

	pos, err := replica.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if want := primary.WALPosition(); pos != want {
		t.Fatalf("promoted at %+v, primary at %+v", pos, want)
	}
	if replica.IsReplica() || replica.ReadOnlyReason() != "" {
		t.Fatal("promotion must clear replica mode and the read-only gate")
	}
	if _, err := replica.Query(`INSERT INTO t VALUES (8)`); err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	if err := replica.Save(); err != nil {
		t.Fatalf("checkpoint after promote: %v", err)
	}
	if _, err := replica.Promote(); err == nil {
		t.Fatal("promoting a primary must fail")
	}
}

// TestPromoteRefusedWhenDegraded: an apply fault latches degraded mode
// and promotion is refused — a replica that could not apply everything it
// acked must never take writes.
func TestPromoteRefusedWhenDegraded(t *testing.T) {
	primDir := filepath.Join(t.TempDir(), "primary")
	primary, err := OpenWith(primDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.MustQuery(`CREATE TABLE t (a INT)`)

	fs := vfs.NewFailFS(nil)
	replica, _ := openReplica(t, fs)
	defer replica.Close()

	pos := replica.WALPosition()
	data, _, err := primary.ReadWALChunk(pos.Gen, pos.Offset, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payloads, _, err := wal.Frames(data)
	if err != nil {
		t.Fatal(err)
	}
	fs.FailOn(vfs.OpSync, "wal.log", 1, errors.New("injected replica fsync failure"))
	if _, err := replica.ApplyReplicated(pos.Offset, payloads); err == nil {
		t.Fatal("apply with failing local log must error")
	}
	if replica.Degraded() == nil {
		t.Fatal("apply fault must latch degraded mode")
	}
	if _, err := replica.Promote(); err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("promote on degraded replica = %v, want refusal", err)
	}
}

// TestDegradedClearsOnReopen: a crash while degraded recovers clean — the
// reopen replays the durable prefix and the latch does not persist.
func TestDegradedClearsOnReopen(t *testing.T) {
	db, fs, dir := openFaulted(t, 0)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)
	fs.FailOn(vfs.OpSync, "wal.log", 1, errors.New("injected fsync failure"))
	if _, err := db.Query(`INSERT INTO t VALUES (2)`); err == nil {
		t.Fatal("write with failing fsync must error")
	}
	if db.Degraded() == nil {
		t.Fatal("degraded mode must latch")
	}
	// Crash without Close: reopen recovers the durable prefix, healthy.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Degraded() != nil {
		t.Fatalf("degraded latch survived reopen: %v", db2.Degraded())
	}
	r := db2.MustQuery(`SELECT COUNT(*) FROM t`)
	if !strings.Contains(r.String(), "1") {
		t.Fatalf("recovered state wrong:\n%s", r)
	}
	if _, err := db2.Query(`INSERT INTO t VALUES (3)`); err != nil {
		t.Fatalf("write after reopen: %v", err)
	}
}

// TestReadOnlyOpen: the -read-only gate refuses writes with ErrReadOnly
// and never touches the store — not even the final checkpoint on Close.
func TestReadOnlyOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		t.Fatal(err)
	}

	ro, err := OpenDB(dir, OpenOptions{ReadOnly: "maintenance window"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Query(`SELECT COUNT(*) FROM t`); err != nil {
		t.Fatalf("read on read-only db: %v", err)
	}
	_, werr := ro.Query(`INSERT INTO t VALUES (2)`)
	if !errors.Is(werr, ErrReadOnly) || !strings.Contains(werr.Error(), "maintenance window") {
		t.Fatalf("write = %v, want ErrReadOnly with the reason", werr)
	}
	if got := ro.ReadOnlyReason(); got != "maintenance window" {
		t.Fatalf("ReadOnlyReason = %q", got)
	}
	if ro.IsReplica() {
		t.Fatal("read-only is not replica mode")
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("read-only Close rewrote the manifest")
	}
}

// TestSnapshotWireRoundTrip: the bootstrap image survives the wire and a
// corrupted transfer fails the per-file checksum.
func TestSnapshotWireRoundTrip(t *testing.T) {
	pos := WALPos{Gen: 9, Offset: 12345, Records: 42}
	files := []SnapshotFile{
		{Name: "catalog.json", Data: []byte(`{"version":2}`)},
		{Name: "bats/t.a.9.bat", Data: bytes.Repeat([]byte{0xab, 0x00, 0x7f}, 1000)},
		{Name: "bats/empty.bat", Data: nil},
	}
	enc := EncodeSnapshot(pos, files)
	gotPos, gotFiles, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if gotPos != pos {
		t.Fatalf("pos = %+v, want %+v", gotPos, pos)
	}
	if len(gotFiles) != len(files) {
		t.Fatalf("%d files, want %d", len(gotFiles), len(files))
	}
	for i := range files {
		if gotFiles[i].Name != files[i].Name || !bytes.Equal(gotFiles[i].Data, files[i].Data) {
			t.Fatalf("file %d mismatch", i)
		}
	}
	// Flip one data byte mid-stream: decode must fail loudly.
	bad := append([]byte(nil), enc...)
	bad[len(bad)/2] ^= 0x40
	if _, _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("corrupted snapshot decoded without error")
	}
}

// TestBootstrapMarker: a directory with an interrupted install refuses to
// open until explicitly cleared, then bootstraps fresh.
func TestBootstrapMarker(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "replica")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "repl-bootstrap.partial"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDB(dir, OpenOptions{Replica: true}); !errors.Is(err, ErrBootstrapIncomplete) {
		t.Fatalf("open = %v, want ErrBootstrapIncomplete", err)
	}
	if err := ClearIncompleteBootstrap(nil, dir); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDB(dir, OpenOptions{Replica: true})
	if err != nil {
		t.Fatalf("open after clear: %v", err)
	}
	db.Close()
	// Clearing a healthy directory is refused.
	if err := ClearIncompleteBootstrap(nil, dir); err == nil {
		t.Fatal("ClearIncompleteBootstrap on a marker-less directory must refuse")
	}
}

// TestGenerationResetDetected: after a primary checkpoint, a read at the
// old generation reports ErrGenMismatch (the re-bootstrap trigger), and
// ReadWALChunk never serves past the committed end.
func TestGenerationResetDetected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "primary")
	db, err := OpenWith(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	old := db.WALPosition()
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ReadWALChunk(old.Gen, old.Offset, 100); !errors.Is(err, wal.ErrGenMismatch) {
		t.Fatalf("stale-generation read = %v, want ErrGenMismatch", err)
	}
	cur := db.WALPosition()
	if _, _, err := db.ReadWALChunk(cur.Gen, cur.Offset+1, 100); !errors.Is(err, wal.ErrGenMismatch) {
		t.Fatalf("past-end read = %v, want ErrGenMismatch", err)
	}
}

package core

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/rel"
	"repro/internal/shape"
	"repro/internal/sql/ast"
	"repro/internal/types"
)

// createTable implements CREATE TABLE.
func (db *DB) createTable(s *ast.CreateTable) (*Result, error) {
	if db.cat.Exists(s.Name) {
		return nil, fmt.Errorf("at %s: object %q already exists", s.Pos, s.Name)
	}
	b := rel.NewBinder(db.cat)
	cols := make([]catalog.Column, 0, len(s.Cols))
	seen := map[string]bool{}
	for _, cd := range s.Cols {
		if seen[cd.Name] {
			return nil, fmt.Errorf("at %s: duplicate column %q", cd.Pos, cd.Name)
		}
		seen[cd.Name] = true
		st, ok := types.SQLTypeByName(cd.TypeName)
		if !ok {
			return nil, fmt.Errorf("at %s: unknown type %q", cd.Pos, cd.TypeName)
		}
		col := catalog.Column{Name: cd.Name, Type: st}
		if cd.Default != nil {
			v, err := b.ConstValue(cd.Default)
			if err != nil {
				return nil, fmt.Errorf("at %s: DEFAULT: %v", cd.Pos, err)
			}
			cv, err := v.Cast(st.Kind)
			if err != nil {
				return nil, fmt.Errorf("at %s: DEFAULT: %v", cd.Pos, err)
			}
			col.Default = cv
			col.HasDef = true
		}
		cols = append(cols, col)
	}
	t := catalog.NewTable(s.Name, cols)
	// Stamp the fresh incarnation: a stale optimistic snapshot of a
	// same-named dropped table must fail its Mod check (see stampMod).
	db.stampMod(&t.Mod)
	db.noteCreate(s.Name)
	if err := db.cat.AddTable(t); err != nil {
		return nil, err
	}
	if db.durable() {
		db.logRecord(encCreateTable(t))
	}
	return statusResult("table %s created", t.Name), nil
}

// createArray implements CREATE ARRAY (§2): fixed dimensions materialise
// immediately via array.series/array.filler (Fig. 3); dimensions without a
// range are unbounded and grow on INSERT.
func (db *DB) createArray(s *ast.CreateArray) (*Result, error) {
	if db.cat.Exists(s.Name) {
		return nil, fmt.Errorf("at %s: object %q already exists", s.Pos, s.Name)
	}
	b := rel.NewBinder(db.cat)
	var (
		sh        shape.Shape
		unbounded []bool
		attrs     []catalog.Column
	)
	seen := map[string]bool{}
	for _, cd := range s.Cols {
		if seen[cd.Name] {
			return nil, fmt.Errorf("at %s: duplicate column %q", cd.Pos, cd.Name)
		}
		seen[cd.Name] = true
		st, ok := types.SQLTypeByName(cd.TypeName)
		if !ok {
			return nil, fmt.Errorf("at %s: unknown type %q", cd.Pos, cd.TypeName)
		}
		if cd.Dimension {
			if st.Kind != types.KindInt {
				return nil, fmt.Errorf("at %s: dimension %q must have an integer type", cd.Pos, cd.Name)
			}
			d := shape.Dim{Name: cd.Name, Start: 0, Step: 1, Stop: 0}
			ub := cd.Range == nil
			if cd.Range != nil {
				r, err := db.evalDimRange(b, *cd.Range)
				if err != nil {
					return nil, fmt.Errorf("at %s: dimension %q: %v", cd.Pos, cd.Name, err)
				}
				d.Start, d.Step, d.Stop = r.Start, r.Step, r.Stop
			}
			sh = append(sh, d)
			unbounded = append(unbounded, ub)
			continue
		}
		col := catalog.Column{Name: cd.Name, Type: st}
		if cd.Default != nil {
			v, err := b.ConstValue(cd.Default)
			if err != nil {
				return nil, fmt.Errorf("at %s: DEFAULT: %v", cd.Pos, err)
			}
			cv, err := v.Cast(st.Kind)
			if err != nil {
				return nil, fmt.Errorf("at %s: DEFAULT: %v", cd.Pos, err)
			}
			col.Default = cv
			col.HasDef = true
		}
		attrs = append(attrs, col)
	}
	if len(sh) == 0 {
		return nil, fmt.Errorf("at %s: array %q needs at least one dimension", s.Pos, s.Name)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("at %s: array %q needs at least one attribute", s.Pos, s.Name)
	}
	a, err := catalog.NewArray(s.Name, sh, attrs, unbounded)
	if err != nil {
		return nil, err
	}
	// Fresh incarnation stamp; see createTable.
	db.stampMod(&a.Mod)
	db.noteCreate(s.Name)
	if err := db.cat.AddArray(a); err != nil {
		return nil, err
	}
	if db.durable() {
		db.logRecord(encCreateArray(a))
	}
	return statusResult("array %s created (%d cells)", a.Name, a.Cells()), nil
}

// evalDimRange evaluates a [start:step:stop] range to concrete bounds.
func (db *DB) evalDimRange(b *rel.Binder, r ast.DimRange) (shape.Dim, error) {
	var d shape.Dim
	if r.Start == nil || r.Stop == nil {
		return d, fmt.Errorf("dimension ranges need start and stop")
	}
	start, err := b.ConstInt(r.Start)
	if err != nil {
		return d, err
	}
	step := int64(1)
	if r.Step != nil {
		step, err = b.ConstInt(r.Step)
		if err != nil {
			return d, err
		}
	}
	stop, err := b.ConstInt(r.Stop)
	if err != nil {
		return d, err
	}
	if step == 0 {
		return d, fmt.Errorf("step must be non-zero")
	}
	d.Start, d.Step, d.Stop = start, step, stop
	return d, nil
}

// drop implements DROP TABLE / DROP ARRAY.
func (db *DB) drop(s *ast.Drop) (*Result, error) {
	if s.Array {
		a, ok := db.cat.Array(s.Name)
		if !ok {
			if s.IfExists {
				return statusResult("array %s does not exist, skipped", s.Name), nil
			}
			return nil, fmt.Errorf("at %s: no such array: %q", s.Pos, s.Name)
		}
		db.noteDropArray(a)
		if err := db.cat.DropArray(s.Name); err != nil {
			return nil, err
		}
		if db.durable() {
			db.logRecord(encDrop(a.Name, true))
		}
		return statusResult("array %s dropped", s.Name), nil
	}
	t, ok := db.cat.Table(s.Name)
	if !ok {
		if s.IfExists {
			return statusResult("table %s does not exist, skipped", s.Name), nil
		}
		return nil, fmt.Errorf("at %s: no such table: %q", s.Pos, s.Name)
	}
	db.noteDropTable(t)
	if err := db.cat.DropTable(s.Name); err != nil {
		return nil, err
	}
	if db.durable() {
		db.logRecord(encDrop(t.Name, false))
	}
	return statusResult("table %s dropped", s.Name), nil
}

// alterDimension implements ALTER ARRAY a ALTER DIMENSION d SET RANGE:
// overlapping cells keep their values, new cells receive the attribute
// default (Fig. 1(f)).
func (db *DB) alterDimension(s *ast.AlterDimension) (*Result, error) {
	a, ok := db.cat.Array(s.Array)
	if !ok {
		return nil, fmt.Errorf("at %s: no such array: %q", s.Pos, s.Array)
	}
	k, ok := a.DimIndex(s.Dim)
	if !ok {
		return nil, fmt.Errorf("at %s: array %q has no dimension %q", s.Pos, s.Array, s.Dim)
	}
	b := rel.NewBinder(db.cat)
	nd, err := db.evalDimRange(b, s.Range)
	if err != nil {
		return nil, fmt.Errorf("at %s: %v", s.Pos, err)
	}
	nd.Name = s.Dim
	db.noteModifyArray(a)

	newShape := append(shape.Shape{}, a.Shape...)
	newShape[k] = nd
	if err := reshapeArrayTo(a, newShape); err != nil {
		return nil, err
	}
	if db.durable() {
		db.logRecord(encAlterDim(a.Name, k, nd))
	}
	return statusResult("array %s altered (%d cells)", a.Name, a.Cells()), nil
}

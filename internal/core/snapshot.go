package core

// Snapshot publication: the copy-on-write half of the engine's
// concurrency model.
//
// The live catalog (db.cat) is owned by the writer lock. Readers never
// touch it: they execute against db.view, an immutable catalog published
// after every autocommitted write statement and on COMMIT. Publication is
// incremental — it clones the previous snapshot's maps and re-freezes only
// the objects the statement actually dirtied. Freezing (catalog.Freeze /
// bat.Freeze) shares the backing data arrays with the live object but
// fixes row counts and deep-clones the NULL/deletion bitmaps, so:
//
//   - appends by the writer land at or beyond every published count and
//     stay invisible to readers;
//   - bitmap flips (DELETE, NULL punching) hit the writer's private mask;
//   - in-place data overwrites (UPDATE, array INSERT) go through
//     bat.Writable, which deep-clones shared storage first.
//
// The result: a snapshot, once published, is immutable forever, and a
// reader holding one sees a consistent statement boundary no matter what
// the writer does next.

// touch records that an object's storage or existence changed since the
// last publication. Must be called under the writer lock.
func (db *DB) touch(name string) {
	db.dirty[name] = struct{}{}
}

// publishLocked builds and installs a fresh immutable snapshot from the
// previous one, re-freezing the dirty objects. Must be called under the
// writer lock.
func (db *DB) publishLocked() {
	if len(db.dirty) == 0 {
		return
	}
	snap := db.view.Load().CloneRefs()
	for name := range db.dirty {
		if t, ok := db.cat.Table(name); ok {
			snap.ReplaceTable(t.Freeze())
			continue
		}
		if a, ok := db.cat.Array(name); ok {
			snap.ReplaceArray(a.Freeze())
			continue
		}
		snap.Remove(name) // dropped
	}
	clear(db.dirty)
	db.view.Store(snap)
}

package core

import "repro/internal/catalog"

// Snapshot publication: the copy-on-write half of the engine's
// concurrency model.
//
// The live catalog (db.cat) is owned by the writer lock. Readers never
// touch it: they execute against db.view, an immutable catalog published
// after every autocommitted write statement and on COMMIT. Publication is
// incremental — it clones the previous snapshot's maps and re-freezes only
// the objects the statement actually dirtied. Freezing (catalog.Freeze /
// bat.Freeze) shares the backing data arrays with the live object but
// fixes row counts and deep-clones the NULL/deletion bitmaps, so:
//
//   - appends by the writer land at or beyond every published count and
//     stay invisible to readers;
//   - bitmap flips (DELETE, NULL punching) hit the writer's private mask;
//   - in-place data overwrites (UPDATE, array INSERT) go through
//     bat.Writable, which deep-clones shared storage first.
//
// The result: a snapshot, once published, is immutable forever, and a
// reader holding one sees a consistent statement boundary no matter what
// the writer does next.

// touch records that an object's storage or existence changed since the
// last publication (snapshot granularity) and since the last checkpoint
// (persistence granularity). touchMeta is the variant for changes that
// live only in the manifest (a table's deletion mask): the object must
// re-publish and re-manifest, but its segment files still match and need
// no rewrite. Inside an explicit transaction every dirty-state upgrade
// is remembered so ROLLBACK can restore it: a rolled-back object again
// matches its on-disk state. Must be called under the writer lock.
func (db *DB) touch(name string)     { db.touchLevel(name, true) }
func (db *DB) touchMeta(name string) { db.touchLevel(name, false) }

func (db *DB) touchLevel(name string, data bool) {
	db.dirty[name] = struct{}{}
	if db.dir == "" {
		return
	}
	n := catalog.Normalize(name)
	prev, had := db.ckptDirty[n]
	if db.txn != nil && (!had || (data && !prev)) {
		db.txn.freshDirty = append(db.txn.freshDirty, dirtyMark{name: n, had: had, data: prev})
	}
	db.ckptDirty[n] = prev || data
}

// publishLocked builds and installs a fresh immutable snapshot from the
// previous one, re-freezing the dirty objects. Must be called under the
// writer lock.
func (db *DB) publishLocked() {
	if len(db.dirty) == 0 {
		return
	}
	snap := db.view.Load().CloneRefs()
	for name := range db.dirty {
		if t, ok := db.cat.Table(name); ok {
			snap.ReplaceTable(t.Freeze())
			continue
		}
		if a, ok := db.cat.Array(name); ok {
			snap.ReplaceArray(a.Freeze())
			continue
		}
		snap.Remove(name) // dropped
	}
	clear(db.dirty)
	db.view.Store(snap)
}

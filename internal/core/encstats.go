package core

import (
	"repro/internal/bat"
)

// Encoding observability: per-column compression state for /healthz and
// operator tooling. The numbers describe the in-memory columns, which —
// because checkpoints install the encoded form they persist and loads
// keep the encoded form they read — match the segment store for every
// column the catalog has checkpointed.

// ColumnEncoding summarises one column's physical storage.
type ColumnEncoding struct {
	Object string `json:"object"`
	Column string `json:"column"`
	// Slabs counts the column's 64K-row slabs per encoding name
	// ("plain", "rle", "dict", "for", "delta"). Plain (unencoded)
	// columns report all slabs as plain.
	Slabs        map[string]int `json:"slabs"`
	EncodedBytes int64          `json:"encoded_bytes"`
	LogicalBytes int64          `json:"logical_bytes"`
}

// EncodingStats aggregates the per-column mix with store-wide totals.
type EncodingStats struct {
	Enabled      bool             `json:"enabled"`
	Columns      []ColumnEncoding `json:"columns,omitempty"`
	EncodedBytes int64            `json:"encoded_bytes"`
	LogicalBytes int64            `json:"logical_bytes"`
	// Ratio is LogicalBytes/EncodedBytes (1 when nothing is encoded or
	// the store is empty) — the store-wide compression factor.
	Ratio float64 `json:"ratio"`
}

func columnEncoding(obj, col string, b *bat.BAT) ColumnEncoding {
	ce := ColumnEncoding{
		Object:       obj,
		Column:       col,
		Slabs:        map[string]int{},
		EncodedBytes: b.EncodedBytes(),
		LogicalBytes: b.LogicalBytes(),
	}
	if encs := b.SlabEncodings(); encs != nil {
		for _, e := range encs {
			ce.Slabs[e.String()]++
		}
	} else if n := b.NumSlabs(); n > 0 {
		ce.Slabs[bat.EncPlain.String()] = n
	}
	return ce
}

// EncodingStats reports the per-column encoding mix and encoded-versus-
// logical sizes of the published snapshot.
func (db *DB) EncodingStats() EncodingStats {
	st := EncodingStats{Enabled: bat.EncodingsEnabled()}
	cat := db.view.Load()
	for _, name := range cat.TableNames() {
		t, _ := cat.Table(name)
		for i, c := range t.Columns {
			st.Columns = append(st.Columns, columnEncoding(t.Name, c.Name, t.Bats[i]))
		}
	}
	for _, name := range cat.ArrayNames() {
		a, _ := cat.Array(name)
		for i, c := range a.Attrs {
			st.Columns = append(st.Columns, columnEncoding(a.Name, c.Name, a.AttrBats[i]))
		}
	}
	for _, ce := range st.Columns {
		st.EncodedBytes += ce.EncodedBytes
		st.LogicalBytes += ce.LogicalBytes
	}
	st.Ratio = 1
	if st.EncodedBytes > 0 {
		st.Ratio = float64(st.LogicalBytes) / float64(st.EncodedBytes)
	}
	return st
}

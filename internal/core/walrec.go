package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/gdk"
	"repro/internal/shape"
	"repro/internal/types"
)

// WAL record encoding: every committed write statement appends one
// logical record describing the effect it applied — not the SQL text, so
// replay needs no parser and is deterministic by construction. DDL
// records carry the schema as JSON (the same manifest structs the
// checkpoint writes); DML records carry tight binary deltas: varint
// framing, values tagged with their kind, row/cell positions as written.
//
// Replay (applyWALRecord) is the recovery half: it decodes a record and
// re-applies it to the live catalog. Every decode is bounds-checked and
// every apply validates object names, column counts and positions, so a
// corrupted-but-checksum-valid record yields a clean recovery error, not
// a panic.

// Record opcodes (first payload byte).
const (
	recCreateTable byte = iota + 1
	recCreateArray
	recDrop
	recAlterDim
	recTableAppend
	recTableUpdate
	recTableDelete
	recArrayCells // INSERT INTO array: optional growth + cell overwrites
	recArrayUpdate
	recArrayDelete
	recBulkAttrInts
)

// maxReplayCells bounds array shapes accepted during replay; anything
// larger is treated as corruption (it would dwarf what this engine can
// materialise anyway) instead of driving a huge allocation.
const maxReplayCells = 1 << 31

// ------------------------------------------------------------- encoding

type recEnc struct{ b []byte }

func newRecEnc(op byte) *recEnc { return &recEnc{b: []byte{op}} }

func (e *recEnc) u64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *recEnc) i64(v int64)  { e.b = binary.AppendVarint(e.b, v) }

func (e *recEnc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *recEnc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// val encodes a scalar: one kind byte (0x80 = NULL) plus the payload.
func (e *recEnc) val(v types.Value) {
	k := v.Kind()
	if v.IsNull() {
		e.b = append(e.b, byte(k)|0x80)
		return
	}
	e.b = append(e.b, byte(k))
	switch k {
	case types.KindInt, types.KindOID:
		e.i64(v.Int64())
	case types.KindFloat:
		f, _ := v.AsFloat()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		e.b = append(e.b, buf[:]...)
	case types.KindBool:
		e.bool(v.BoolVal())
	case types.KindStr:
		e.str(v.StrVal())
	}
}

func (e *recEnc) dims(sh shape.Shape) {
	e.u64(uint64(len(sh)))
	for _, d := range sh {
		e.i64(d.Start)
		e.i64(d.Step)
		e.i64(d.Stop)
	}
}

// ------------------------------------------------------------- decoding

type recDec struct {
	b   []byte
	off int
	err error
}

func (d *recDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wal record: "+format, args...)
	}
}

func (d *recDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *recDec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated varint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *recDec) count(what string) int {
	v := d.u64()
	if d.err == nil && v > uint64(len(d.b)) {
		// Any per-item count is bounded by the record size (every item
		// takes at least one byte), so a larger count is corruption.
		d.fail("implausible %s count %d", what, v)
	}
	return int(v)
}

// index decodes a row/cell/column ordinal: unlike count it is not
// bounded by the record size (a 5-byte record can delete row 1e6), only
// by what fits engine-side storage. Callers range-check it against the
// live object.
func (d *recDec) index(what string) int {
	v := d.u64()
	if d.err == nil && v > math.MaxInt32 {
		d.fail("implausible %s %d", what, v)
	}
	return int(v)
}

func (d *recDec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated byte at %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *recDec) str() string {
	n := d.count("string length")
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.b) {
		d.fail("truncated string at %d", d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *recDec) val() types.Value {
	tag := d.byte()
	if d.err != nil {
		return types.Value{}
	}
	k := types.Kind(tag &^ 0x80)
	if k > types.KindStr {
		d.fail("unknown value kind %d", k)
		return types.Value{}
	}
	if tag&0x80 != 0 {
		return types.Null(k)
	}
	switch k {
	case types.KindInt:
		return types.Int(d.i64())
	case types.KindOID:
		return types.Oid(types.OID(d.i64()))
	case types.KindFloat:
		if d.off+8 > len(d.b) {
			d.fail("truncated float at %d", d.off)
			return types.Value{}
		}
		bits := binary.LittleEndian.Uint64(d.b[d.off:])
		d.off += 8
		return types.Float(math.Float64frombits(bits))
	case types.KindBool:
		return types.Bool(d.byte() != 0)
	case types.KindStr:
		return types.Str(d.str())
	case types.KindVoid:
		d.fail("non-NULL void value")
	}
	return types.Value{}
}

// dims decodes dimension ranges onto a copy of base (names and count must
// match the live array; only the ranges travel in the record).
func (d *recDec) dims(base shape.Shape) shape.Shape {
	n := d.count("dimension")
	if d.err != nil {
		return nil
	}
	if n != len(base) {
		d.fail("dimension count %d, object has %d", n, len(base))
		return nil
	}
	out := append(shape.Shape{}, base...)
	for k := range out {
		out[k].Start = d.i64()
		out[k].Step = d.i64()
		out[k].Stop = d.i64()
	}
	return out
}

func (d *recDec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wal record: %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

// ------------------------------------------------------------- records

// logRecord queues an encoded record for the current statement; it is
// flushed (with one fsync) at the autocommit boundary or on COMMIT, and
// dropped on ROLLBACK. No-op for in-memory databases. Must be called
// under the writer lock.
func (db *DB) logRecord(rec []byte) {
	if db.wal == nil {
		return
	}
	db.walPending = append(db.walPending, rec)
}

// durable reports whether effects must be captured for the WAL. Sites
// that pay to collect deltas (e.g. UPDATE row captures) check it first.
func (db *DB) durable() bool { return db.wal != nil }

func encCreateTable(t *catalog.Table) []byte {
	mt := manifestTable{Name: t.Name}
	for _, c := range t.Columns {
		mt.Columns = append(mt.Columns, colToManifest(c))
	}
	data, _ := json.Marshal(mt)
	e := newRecEnc(recCreateTable)
	e.b = append(e.b, data...)
	return e.b
}

func encCreateArray(a *catalog.Array) []byte {
	ma := manifestArray{Name: a.Name}
	for k, d := range a.Shape {
		ma.Dims = append(ma.Dims, manifestDim{
			Name: d.Name, Start: d.Start, Step: d.Step, Stop: d.Stop,
			Unbounded: a.Unbounded[k],
		})
	}
	for _, c := range a.Attrs {
		ma.Attrs = append(ma.Attrs, colToManifest(c))
	}
	data, _ := json.Marshal(ma)
	e := newRecEnc(recCreateArray)
	e.b = append(e.b, data...)
	return e.b
}

func encDrop(name string, isArray bool) []byte {
	e := newRecEnc(recDrop)
	e.bool(isArray)
	e.str(name)
	return e.b
}

func encAlterDim(name string, dim int, d shape.Dim) []byte {
	e := newRecEnc(recAlterDim)
	e.str(name)
	e.u64(uint64(dim))
	e.i64(d.Start)
	e.i64(d.Step)
	e.i64(d.Stop)
	return e.b
}

func encTableAppend(name string, ncols int, rows [][]types.Value) []byte {
	e := newRecEnc(recTableAppend)
	e.str(name)
	e.u64(uint64(ncols))
	e.u64(uint64(len(rows)))
	for _, row := range rows {
		for _, v := range row {
			e.val(v)
		}
	}
	return e.b
}

// Captured row/cell mutations travel as a flat buffer: positions in
// idxs, the new values (already cast to the column kinds) row-major in
// flat — len(flat) = len(idxs) * len(cols). The flat layout keeps the
// capture path allocation-free per row.

func encTableUpdate(name string, cols []int, idxs []int, flat []types.Value) []byte {
	e := newRecEnc(recTableUpdate)
	e.str(name)
	e.u64(uint64(len(cols)))
	for _, c := range cols {
		e.u64(uint64(c))
	}
	e.u64(uint64(len(idxs)))
	k := len(cols)
	for j, idx := range idxs {
		e.u64(uint64(idx))
		for _, v := range flat[j*k : (j+1)*k] {
			e.val(v)
		}
	}
	return e.b
}

func encPositions(op byte, name string, idxs []int) []byte {
	e := newRecEnc(op)
	e.str(name)
	e.u64(uint64(len(idxs)))
	for _, i := range idxs {
		e.u64(uint64(i))
	}
	return e.b
}

func encArrayCells(op byte, name string, sh shape.Shape, attrs []int, idxs []int, flat []types.Value) []byte {
	e := newRecEnc(op)
	e.str(name)
	if op == recArrayCells {
		e.dims(sh)
	}
	e.u64(uint64(len(attrs)))
	for _, a := range attrs {
		e.u64(uint64(a))
	}
	e.u64(uint64(len(idxs)))
	k := len(attrs)
	for j, idx := range idxs {
		e.u64(uint64(idx))
		for _, v := range flat[j*k : (j+1)*k] {
			e.val(v)
		}
	}
	return e.b
}

func encBulkAttrInts(name string, attr int, data []int64) []byte {
	e := newRecEnc(recBulkAttrInts)
	e.str(name)
	e.u64(uint64(attr))
	e.u64(uint64(len(data)))
	for _, v := range data {
		e.i64(v)
	}
	return e.b
}

// --------------------------------------------------------------- replay

// encodeBatch frames the records of one commit unit as a single WAL
// record: uvarint count, then each record length-prefixed. The log layer
// checksums the whole batch, making a commit atomic under torn writes.
func encodeBatch(recs [][]byte) []byte {
	n := binary.MaxVarintLen64
	for _, r := range recs {
		n += binary.MaxVarintLen64 + len(r)
	}
	b := make([]byte, 0, n)
	b = binary.AppendUvarint(b, uint64(len(recs)))
	for _, r := range recs {
		b = binary.AppendUvarint(b, uint64(len(r)))
		b = append(b, r...)
	}
	return b
}

// applyWALBatch replays one commit unit: every record in it, in order.
func (db *DB) applyWALBatch(batch []byte) error {
	d := &recDec{b: batch}
	n := d.count("batch record")
	if d.err != nil {
		return d.err
	}
	for i := 0; i < n; i++ {
		l := d.count("record length")
		if d.err != nil {
			return d.err
		}
		if d.off+l > len(batch) {
			return fmt.Errorf("wal record: truncated batch entry at %d", d.off)
		}
		rec := batch[d.off : d.off+l]
		d.off += l
		if err := db.applyWALRecord(rec); err != nil {
			return err
		}
	}
	return d.done()
}

// applyWALRecord decodes one record and re-applies its effect to the live
// catalog during recovery. The touched object is marked checkpoint-dirty:
// its state now differs from its on-disk segment files.
func (db *DB) applyWALRecord(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("wal record: empty")
	}
	op, body := rec[0], rec[1:]
	switch op {
	case recCreateTable:
		return db.applyCreateTable(body)
	case recCreateArray:
		return db.applyCreateArray(body)
	case recDrop:
		return db.applyDrop(body)
	case recAlterDim:
		return db.applyAlterDim(body)
	case recTableAppend:
		return db.applyTableAppend(body)
	case recTableUpdate:
		return db.applyTableUpdate(body)
	case recTableDelete:
		return db.applyTableDelete(body)
	case recArrayCells, recArrayUpdate:
		return db.applyArrayCells(op, body)
	case recArrayDelete:
		return db.applyArrayDelete(body)
	case recBulkAttrInts:
		return db.applyBulkAttrInts(body)
	default:
		return fmt.Errorf("wal record: unknown opcode %d", op)
	}
}

// ckptTouch marks a replayed object as diverged from its checkpointed
// segments; data=false when only manifest-level state (a deletion mask)
// changed. Replay runs outside any transaction, so no upgrade tracking.
// The object is also marked publish-dirty: recovery publishes everything
// afterwards anyway, and streamed replication (ApplyReplicated) relies
// on the mark to re-freeze exactly the objects a batch touched.
func (db *DB) ckptTouch(name string, data bool) {
	n := catalog.Normalize(name)
	db.ckptDirty[n] = db.ckptDirty[n] || data
	db.dirty[n] = struct{}{}
}

func (db *DB) applyCreateTable(body []byte) error {
	var mt manifestTable
	if err := json.Unmarshal(body, &mt); err != nil {
		return fmt.Errorf("wal create table: %v", err)
	}
	cols := make([]catalog.Column, 0, len(mt.Columns))
	for _, mc := range mt.Columns {
		col, err := colFromManifest(mc)
		if err != nil {
			return fmt.Errorf("wal create table %s: %v", mt.Name, err)
		}
		cols = append(cols, col)
	}
	if err := db.cat.AddTable(catalog.NewTable(mt.Name, cols)); err != nil {
		return fmt.Errorf("wal create table: %v", err)
	}
	db.ckptTouch(mt.Name, true)
	return nil
}

func (db *DB) applyCreateArray(body []byte) error {
	var ma manifestArray
	if err := json.Unmarshal(body, &ma); err != nil {
		return fmt.Errorf("wal create array: %v", err)
	}
	a, err := arrayFromManifest(ma)
	if err != nil {
		return fmt.Errorf("wal create array %s: %v", ma.Name, err)
	}
	if err := db.cat.AddArray(a); err != nil {
		return fmt.Errorf("wal create array: %v", err)
	}
	db.ckptTouch(ma.Name, true)
	return nil
}

// arrayFromManifest materialises a fresh array from schema metadata (used
// by CREATE ARRAY replay; attribute cells start at their defaults — cell
// writes follow as separate records).
func arrayFromManifest(ma manifestArray) (*catalog.Array, error) {
	var (
		sh        shape.Shape
		unbounded []bool
	)
	for _, md := range ma.Dims {
		sh = append(sh, shape.Dim{Name: md.Name, Start: md.Start, Step: md.Step, Stop: md.Stop})
		unbounded = append(unbounded, md.Unbounded)
	}
	if err := checkReplayShape(sh); err != nil {
		return nil, err
	}
	attrs := make([]catalog.Column, 0, len(ma.Attrs))
	for _, mc := range ma.Attrs {
		col, err := colFromManifest(mc)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, col)
	}
	return catalog.NewArray(ma.Name, sh, attrs, unbounded)
}

// checkReplayShape rejects shapes a corrupt record could smuggle in: a
// zero step, a negative extent, or a cell count past maxReplayCells.
func checkReplayShape(sh shape.Shape) error {
	cells := int64(1)
	for _, d := range sh {
		if d.Step == 0 {
			return fmt.Errorf("zero step in dimension %q", d.Name)
		}
		n := int64(d.N())
		if n < 0 {
			return fmt.Errorf("negative extent in dimension %q", d.Name)
		}
		if n > 0 && cells > maxReplayCells/n {
			return fmt.Errorf("implausible cell count")
		}
		cells *= n
	}
	return nil
}

func (db *DB) applyDrop(body []byte) error {
	d := &recDec{b: body}
	isArray := d.byte() != 0
	name := d.str()
	if err := d.done(); err != nil {
		return err
	}
	if isArray {
		if err := db.cat.DropArray(name); err != nil {
			return fmt.Errorf("wal drop: %v", err)
		}
	} else if err := db.cat.DropTable(name); err != nil {
		return fmt.Errorf("wal drop: %v", err)
	}
	db.ckptTouch(name, true)
	return nil
}

func (db *DB) applyAlterDim(body []byte) error {
	d := &recDec{b: body}
	name := d.str()
	k := d.index("dimension index")
	start, step, stop := d.i64(), d.i64(), d.i64()
	if err := d.done(); err != nil {
		return err
	}
	a, ok := db.cat.Array(name)
	if !ok {
		return fmt.Errorf("wal alter dimension: no such array %q", name)
	}
	if k >= len(a.Shape) {
		return fmt.Errorf("wal alter dimension: index %d out of range", k)
	}
	newShape := append(shape.Shape{}, a.Shape...)
	newShape[k].Start, newShape[k].Step, newShape[k].Stop = start, step, stop
	if err := checkReplayShape(newShape); err != nil {
		return fmt.Errorf("wal alter dimension: %v", err)
	}
	if err := reshapeArrayTo(a, newShape); err != nil {
		return fmt.Errorf("wal alter dimension: %v", err)
	}
	db.ckptTouch(name, true)
	return nil
}

// reshapeArrayTo re-grids every attribute onto newShape (overlapping
// cells keep their values, fresh cells get the attribute default) and
// rebuilds the dimension BATs. Shared by ALTER DIMENSION, unbounded
// growth and their WAL replays.
func reshapeArrayTo(a *catalog.Array, newShape shape.Shape) error {
	for i, col := range a.Attrs {
		def := col.Default
		if !col.HasDef {
			def = types.NullUnknown()
		}
		nb, err := gdk.Reshape(a.AttrBats[i], a.Shape, newShape, def)
		if err != nil {
			return err
		}
		a.AttrBats[i] = nb
	}
	a.Shape = newShape
	return a.RebuildDims()
}

func (db *DB) applyTableAppend(body []byte) error {
	d := &recDec{b: body}
	name := d.str()
	ncols := d.count("column")
	nrows := d.count("row")
	if d.err != nil {
		return d.err
	}
	t, ok := db.cat.Table(name)
	if !ok {
		return fmt.Errorf("wal append: no such table %q", name)
	}
	if ncols != len(t.Columns) {
		return fmt.Errorf("wal append: table %q has %d columns, record has %d", name, len(t.Columns), ncols)
	}
	for r := 0; r < nrows; r++ {
		for c := 0; c < ncols; c++ {
			v := d.val()
			if d.err != nil {
				return d.err
			}
			if err := t.Bats[c].Append(v); err != nil {
				return fmt.Errorf("wal append: table %q column %q: %v", name, t.Columns[c].Name, err)
			}
		}
	}
	if err := d.done(); err != nil {
		return err
	}
	if t.Deleted != nil {
		t.Deleted.Resize(t.PhysRows())
	}
	db.ckptTouch(name, true)
	return nil
}

func (db *DB) applyTableUpdate(body []byte) error {
	d := &recDec{b: body}
	name := d.str()
	ncols := d.count("column")
	if d.err != nil {
		return d.err
	}
	t, ok := db.cat.Table(name)
	if !ok {
		return fmt.Errorf("wal update: no such table %q", name)
	}
	cols := make([]int, ncols)
	for i := range cols {
		cols[i] = d.index("column index")
		if d.err == nil && cols[i] >= len(t.Columns) {
			return fmt.Errorf("wal update: column index %d out of range for %q", cols[i], name)
		}
	}
	nrows := d.count("row")
	phys := t.PhysRows()
	for r := 0; r < nrows; r++ {
		idx := d.index("row index")
		if d.err != nil {
			return d.err
		}
		if idx >= phys {
			return fmt.Errorf("wal update: row %d out of range for %q", idx, name)
		}
		for _, c := range cols {
			v := d.val()
			if d.err != nil {
				return d.err
			}
			if err := t.Bats[c].Replace(idx, v); err != nil {
				return fmt.Errorf("wal update: %v", err)
			}
		}
	}
	if err := d.done(); err != nil {
		return err
	}
	db.ckptTouch(name, true)
	return nil
}

func (db *DB) applyTableDelete(body []byte) error {
	d := &recDec{b: body}
	name := d.str()
	n := d.count("row")
	if d.err != nil {
		return d.err
	}
	t, ok := db.cat.Table(name)
	if !ok {
		return fmt.Errorf("wal delete: no such table %q", name)
	}
	phys := t.PhysRows()
	if t.Deleted == nil {
		t.Deleted = bat.NewBitmap(phys)
	}
	for i := 0; i < n; i++ {
		idx := d.index("row index")
		if d.err != nil {
			return d.err
		}
		if idx >= phys {
			return fmt.Errorf("wal delete: row %d out of range for %q", idx, name)
		}
		t.Deleted.Set(idx, true)
	}
	if err := d.done(); err != nil {
		return err
	}
	db.ckptTouch(name, false)
	return nil
}

func (db *DB) applyArrayCells(op byte, body []byte) error {
	d := &recDec{b: body}
	name := d.str()
	if d.err != nil {
		return d.err
	}
	a, ok := db.cat.Array(name)
	if !ok {
		return fmt.Errorf("wal array write: no such array %q", name)
	}
	if op == recArrayCells {
		newShape := d.dims(a.Shape)
		if d.err != nil {
			return d.err
		}
		if err := checkReplayShape(newShape); err != nil {
			return fmt.Errorf("wal array write: %v", err)
		}
		if !shapesEqual(a.Shape, newShape) {
			if err := reshapeArrayTo(a, newShape); err != nil {
				return fmt.Errorf("wal array write: %v", err)
			}
		}
	}
	nattrs := d.count("attribute")
	attrs := make([]int, nattrs)
	for i := range attrs {
		attrs[i] = d.index("attribute index")
		if d.err == nil && attrs[i] >= len(a.AttrBats) {
			return fmt.Errorf("wal array write: attribute index %d out of range for %q", attrs[i], name)
		}
	}
	ncells := d.count("cell")
	cells := a.Cells()
	for c := 0; c < ncells; c++ {
		pos := d.index("cell position")
		if d.err != nil {
			return d.err
		}
		if pos >= cells {
			return fmt.Errorf("wal array write: position %d out of range for %q", pos, name)
		}
		for _, ai := range attrs {
			v := d.val()
			if d.err != nil {
				return d.err
			}
			if err := a.AttrBats[ai].Replace(pos, v); err != nil {
				return fmt.Errorf("wal array write: %v", err)
			}
		}
	}
	if err := d.done(); err != nil {
		return err
	}
	db.ckptTouch(name, true)
	return nil
}

func (db *DB) applyArrayDelete(body []byte) error {
	d := &recDec{b: body}
	name := d.str()
	n := d.count("cell")
	if d.err != nil {
		return d.err
	}
	a, ok := db.cat.Array(name)
	if !ok {
		return fmt.Errorf("wal array delete: no such array %q", name)
	}
	cells := a.Cells()
	for i := 0; i < n; i++ {
		pos := d.index("cell position")
		if d.err != nil {
			return d.err
		}
		if pos >= cells {
			return fmt.Errorf("wal array delete: position %d out of range for %q", pos, name)
		}
		for _, ab := range a.AttrBats {
			ab.SetNull(pos, true)
		}
	}
	if err := d.done(); err != nil {
		return err
	}
	db.ckptTouch(name, true)
	return nil
}

func (db *DB) applyBulkAttrInts(body []byte) error {
	d := &recDec{b: body}
	name := d.str()
	attr := d.index("attribute index")
	n := d.count("value")
	if d.err != nil {
		return d.err
	}
	a, ok := db.cat.Array(name)
	if !ok {
		return fmt.Errorf("wal bulk load: no such array %q", name)
	}
	if attr >= len(a.AttrBats) {
		return fmt.Errorf("wal bulk load: attribute index %d out of range for %q", attr, name)
	}
	if k := a.Attrs[attr].Type.Kind; k != types.KindInt {
		return fmt.Errorf("wal bulk load: attribute %q is %s, not integer", a.Attrs[attr].Name, k)
	}
	if n != a.Cells() {
		return fmt.Errorf("wal bulk load: %d values for %d cells of %q", n, a.Cells(), name)
	}
	data := make([]int64, n)
	for i := range data {
		data[i] = d.i64()
	}
	if err := d.done(); err != nil {
		return err
	}
	a.AttrBats[attr] = bat.FromInts(data)
	db.ckptTouch(name, true)
	return nil
}

func shapesEqual(a, b shape.Shape) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].Step != b[i].Step || a[i].Stop != b[i].Stop {
			return false
		}
	}
	return true
}

package core

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/catalog"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Physical replication support. The logical-effect WAL is deterministic
// and parser-free, so a replica that copies the primary's checkpoint
// files (InstallSnapshot) and then applies the primary's log records in
// order (ApplyReplicated) reconstructs the primary's state exactly — the
// same code path crash recovery already trusts. The replica appends every
// record it applies to its own log with identical framing, so its local
// log is a byte prefix of the primary's: its log size IS its replication
// position, and a replica crash recovers by ordinary Open + resume from
// that position. Promote verifies the applied prefix and opens the write
// path, turning the replica into a primary whose log continues where the
// stream stopped.

// replicaReadOnlyReason is the writeBlockedErr reason while in replica
// mode (cleared by Promote).
const replicaReadOnlyReason = "replica; promote to enable writes"

// bootstrapMarker is dropped in the directory for the duration of
// InstallSnapshot's non-atomic rewrite: a crash mid-install leaves the
// marker behind, telling the next open the directory is an incomplete
// bootstrap to be wiped, not a store to recover.
const bootstrapMarker = "repl-bootstrap.partial"

// ErrBootstrapIncomplete reports a directory whose last snapshot install
// was interrupted: nothing in it can be trusted. Wipe and re-bootstrap.
var ErrBootstrapIncomplete = fmt.Errorf("replica bootstrap was interrupted; wipe the directory and re-bootstrap")

// WALPos is a position in the replicated log stream: the generation, the
// byte offset just past the last committed record, and how many records
// the prefix up to that offset holds.
type WALPos struct {
	Gen     uint64 `json:"gen"`
	Offset  int64  `json:"offset"`
	Records int64  `json:"records"`
}

// WALPosition returns the current log position (zero for in-memory
// databases): what a replica at this exact state would resume from, and
// the primary-side half of every lag computation.
func (db *DB) WALPosition() WALPos {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.walPosLocked()
}

func (db *DB) walPosLocked() WALPos {
	if db.wal == nil {
		return WALPos{}
	}
	return WALPos{Gen: db.wal.Gen(), Offset: db.wal.Size(), Records: db.wal.Records()}
}

// WALTruncated returns how many torn trailing bytes the last open
// discarded from the log — the visible data-loss window after a crash
// mid-append (0 after a clean shutdown or for in-memory databases).
func (db *DB) WALTruncated() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.Truncated()
}

// IsReplica reports whether the database is in replica mode.
func (db *DB) IsReplica() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.replica
}

// ReadOnlyReason returns the policy reason SQL writes are refused ("" for
// a writable database). Degraded mode is reported separately (Degraded).
func (db *DB) ReadOnlyReason() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.readOnly
}

// SnapshotFile is one file of a bootstrap snapshot, named relative to the
// database directory ("catalog.json", "bats/t.a.3.bat").
type SnapshotFile struct {
	Name string
	Data []byte
}

// ReplSnapshot captures the current checkpoint — manifest plus every
// referenced segment file — together with the log generation it pairs
// with. A replica that installs these files and then applies the log of
// that generation from its start reaches the primary's exact state. Runs
// under the read lock, which excludes checkpoints (they hold the writer
// lock), so the captured file set is always internally consistent; the
// log itself is not part of the snapshot — the replica streams it.
func (db *DB) ReplSnapshot() (WALPos, []SnapshotFile, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.dir == "" || db.wal == nil {
		return WALPos{}, nil, fmt.Errorf("replication requires a directory-backed database")
	}
	pos := db.walPosLocked()
	manifest, err := db.fs.ReadFile(filepath.Join(db.dir, "catalog.json"))
	if os.IsNotExist(err) {
		// Never checkpointed: the log alone carries the whole history.
		return pos, nil, nil
	}
	if err != nil {
		return WALPos{}, nil, err
	}
	files := []SnapshotFile{{Name: "catalog.json", Data: manifest}}
	batDir := filepath.Join(db.dir, "bats")
	entries, err := db.fs.ReadDir(batDir)
	if err != nil && !os.IsNotExist(err) {
		return WALPos{}, nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".bat") {
			continue
		}
		data, err := db.fs.ReadFile(filepath.Join(batDir, e.Name()))
		if err != nil {
			return WALPos{}, nil, err
		}
		files = append(files, SnapshotFile{Name: "bats/" + e.Name(), Data: data})
	}
	return pos, files, nil
}

// ReadWALChunk serves up to max raw log bytes from byte offset off of
// generation gen, for streaming to a replica, plus the current position
// (the replica derives its lag from it). A gen that is not the current
// one — or an offset past the committed size, which can only mean the
// reader's position belongs to a discarded log — returns
// wal.ErrGenMismatch: the caller must re-bootstrap from a snapshot.
// Only committed (fsynced) bytes are served, so a served byte can never
// disappear in a primary crash.
func (db *DB) ReadWALChunk(gen uint64, off, max int64) ([]byte, WALPos, error) {
	db.mu.RLock()
	pos := db.walPosLocked()
	dir, fsys, haveWAL := db.dir, db.fs, db.wal != nil
	db.mu.RUnlock()
	if dir == "" || !haveWAL {
		return nil, pos, fmt.Errorf("replication requires a directory-backed database")
	}
	if gen != pos.Gen || off > pos.Offset {
		return nil, pos, fmt.Errorf("%w: stream at (gen %d, offset %d), log at (gen %d, offset %d)",
			wal.ErrGenMismatch, gen, off, pos.Gen, pos.Offset)
	}
	if off == pos.Offset {
		return nil, pos, nil // caught up
	}
	if n := pos.Offset - off; max > n {
		max = n
	}
	// Read outside the lock: a concurrent checkpoint can swap the file,
	// but ChunkFS re-validates the generation against the header, and an
	// open handle on the old inode still yields committed prefix bytes.
	data, err := wal.ChunkFS(fsys, filepath.Join(dir, "wal.log"), gen, off, max)
	if err != nil {
		return nil, pos, err
	}
	return data, pos, nil
}

// InstallSnapshot replaces the replica's entire state — directory and
// memory — with a bootstrap snapshot taken at (pos, files): the
// checkpoint files are written, a fresh log of pos.Gen is created, the
// in-memory catalog is rebuilt from the files and republished. The
// rewrite is guarded by a marker file so a crash mid-install reads as an
// incomplete bootstrap (ErrBootstrapIncomplete on the next open), never
// as a silently inconsistent store. Replica mode only.
func (db *DB) InstallSnapshot(pos WALPos, files []SnapshotFile) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.replica {
		return fmt.Errorf("InstallSnapshot: not a replica")
	}
	if db.dir == "" {
		return fmt.Errorf("InstallSnapshot: replication requires a directory-backed database")
	}
	for _, f := range files {
		if f.Name != "catalog.json" && !strings.HasPrefix(f.Name, "bats/") {
			return fmt.Errorf("InstallSnapshot: unexpected file %q in snapshot", f.Name)
		}
	}
	if db.wal != nil {
		_ = db.wal.Close()
		db.wal = nil
	}

	// Marker up first: from here until it is removed, the directory is
	// officially trash.
	marker := filepath.Join(db.dir, bootstrapMarker)
	if err := db.fs.MkdirAll(db.dir, 0o755); err != nil {
		return err
	}
	mf, err := db.fs.Create(marker)
	if err != nil {
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}

	if err := db.installFilesLocked(pos, files); err != nil {
		// The marker stays: the next open refuses the directory.
		return err
	}

	// Rebuild memory from the just-installed files, exactly as Open does.
	db.cat = catalog.New()
	db.walGen = 0
	clear(db.ckptDirty)
	clear(db.dirty)
	if err := db.load(); err != nil {
		return err
	}
	db.walGen = pos.Gen // authoritative even when no manifest travelled
	l, err := wal.OpenFS(db.fs, filepath.Join(db.dir, "wal.log"), nil)
	if err != nil {
		return err
	}
	db.wal = l

	// Publish the new state wholesale: a fresh snapshot built from the
	// new catalog replaces the old one, dropping objects that no longer
	// exist.
	snap := catalog.New()
	for _, n := range db.cat.TableNames() {
		t, _ := db.cat.Table(n)
		snap.ReplaceTable(t.Freeze())
	}
	for _, n := range db.cat.ArrayNames() {
		a, _ := db.cat.Array(n)
		snap.ReplaceArray(a.Freeze())
	}
	db.view.Store(snap)
	db.pcache.purge() // schema may have changed wholesale

	// The store now mirrors a healthy primary checkpoint: any earlier
	// degraded latch is healed by construction.
	db.degraded = nil
	if err := db.fs.Remove(marker); err != nil {
		return err
	}
	if err := db.fs.SyncDir(db.dir); err != nil {
		return err
	}
	return nil
}

// installFilesLocked rewrites the on-disk state from snapshot files: old
// manifest and segments go, new ones land, and a fresh empty log of the
// snapshot's generation is created.
func (db *DB) installFilesLocked(pos WALPos, files []SnapshotFile) error {
	// Drop the old state (manifest first, so a crash window never pairs
	// the old manifest with new segments).
	if err := db.fs.Remove(filepath.Join(db.dir, "catalog.json")); err != nil && !os.IsNotExist(err) {
		return err
	}
	batDir := filepath.Join(db.dir, "bats")
	if entries, err := db.fs.ReadDir(batDir); err == nil {
		for _, e := range entries {
			if !e.IsDir() {
				_ = db.fs.Remove(filepath.Join(batDir, e.Name()))
			}
		}
	}
	if err := db.fs.MkdirAll(batDir, 0o755); err != nil {
		return err
	}
	for _, f := range files {
		path := filepath.Join(db.dir, filepath.FromSlash(f.Name))
		w, err := db.fs.Create(path)
		if err != nil {
			return err
		}
		if _, err := w.Write(f.Data); err != nil {
			w.Close()
			return err
		}
		if err := w.Sync(); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	if err := db.fs.SyncDir(batDir); err != nil {
		return err
	}
	l, err := wal.CreateFS(db.fs, filepath.Join(db.dir, "wal.log"), pos.Gen)
	if err != nil {
		return err
	}
	return l.Close()
}

// checkBootstrapMarker refuses to open a directory whose last snapshot
// install was interrupted.
func (db *DB) checkBootstrapMarker() error {
	if db.dir == "" {
		return nil
	}
	if _, err := db.fs.ReadFile(filepath.Join(db.dir, bootstrapMarker)); err == nil {
		return ErrBootstrapIncomplete
	}
	return nil
}

// ClearIncompleteBootstrap wipes the data files of a directory whose open
// failed with ErrBootstrapIncomplete (manifest, segments, log, marker),
// leaving it ready for a fresh bootstrap. It refuses directories without
// the marker: a directory that opens normally is never wiped.
func ClearIncompleteBootstrap(fsys vfs.FS, dir string) error {
	if fsys == nil {
		fsys = vfs.OS
	}
	marker := filepath.Join(dir, bootstrapMarker)
	if _, err := fsys.ReadFile(marker); err != nil {
		return fmt.Errorf("%s: no interrupted bootstrap to clear", dir)
	}
	for _, name := range []string{"catalog.json", "catalog.json.tmp", "wal.log", "wal.log.tmp"} {
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	batDir := filepath.Join(dir, "bats")
	if entries, err := fsys.ReadDir(batDir); err == nil {
		for _, e := range entries {
			if !e.IsDir() {
				if err := fsys.Remove(filepath.Join(batDir, e.Name())); err != nil {
					return err
				}
			}
		}
	}
	if err := fsys.Remove(marker); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// ApplyReplicated applies streamed log records: payloads are the decoded
// record payloads of consecutive frames starting at stream byte offset
// off. Each is appended to the local log (one fsynced batch, identical
// framing — so local log bytes stay identical to the primary's) and then
// applied to the catalog through the WAL replay path, and the result is
// published snapshot-atomically per batch.
//
// The offset makes re-delivery safe: frames that lie entirely below the
// local log size were applied before a reconnect resent them and are
// skipped (the idempotence the stream needs — the records themselves are
// not idempotent), a frame straddling the local size or a gap above it
// is a protocol error. Returns the new local position. Replica mode only.
func (db *DB) ApplyReplicated(off int64, payloads [][]byte) (WALPos, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.replica {
		return db.walPosLocked(), fmt.Errorf("ApplyReplicated: not a replica")
	}
	if db.wal == nil {
		return db.walPosLocked(), fmt.Errorf("ApplyReplicated: no local log")
	}
	size := db.wal.Size()
	i := 0
	for i < len(payloads) {
		end := off + wal.FrameSize(len(payloads[i]))
		if end > size {
			break
		}
		off = end // already durable locally: skip the re-delivery
		i++
	}
	if off < size {
		return db.walPosLocked(), fmt.Errorf("ApplyReplicated: frame at %d straddles local log end %d", off, size)
	}
	if off > size {
		return db.walPosLocked(), fmt.Errorf("ApplyReplicated: gap — stream at %d, local log ends at %d", off, size)
	}
	fresh := payloads[i:]
	if len(fresh) == 0 {
		return db.walPosLocked(), nil
	}
	// Durability first (exactly the order recovery assumes): a crash
	// between append and apply replays the records from the local log.
	if err := db.wal.Append(fresh...); err != nil {
		cause := fmt.Errorf("replica wal append: %v", err)
		db.degradeLocked(cause)
		return db.walPosLocked(), cause
	}
	for _, p := range fresh {
		if err := db.applyWALBatch(p); err != nil {
			// The record is durable locally but could not be applied: the
			// live state is now behind the log. Reads stay consistent (the
			// snapshot predates the batch); latch degraded so the fault is
			// visible and promotion is refused, and let a reopen replay
			// the log from disk.
			cause := fmt.Errorf("replica apply: %v", err)
			db.degradeLocked(cause)
			return db.walPosLocked(), cause
		}
	}
	db.publishLocked()
	return db.walPosLocked(), nil
}

// Promote ends replica mode: the tailer must already be stopped. The
// applied prefix is verified (structural integrity; a degraded latch —
// an apply or append that failed — refuses promotion outright), then the
// write path opens. The local log simply continues at its current
// generation and offset: the promoted node is a primary whose history is
// the exact acked prefix it replicated.
func (db *DB) Promote() (WALPos, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.replica {
		return db.walPosLocked(), fmt.Errorf("promote: not a replica")
	}
	if db.degraded != nil {
		return db.walPosLocked(), fmt.Errorf("promote refused: replica is degraded: %v", db.degraded)
	}
	if err := db.checkIntegrityLocked(); err != nil {
		return db.walPosLocked(), fmt.Errorf("promote refused: applied prefix fails verification: %v", err)
	}
	db.replica = false
	if db.readOnly == replicaReadOnlyReason {
		db.readOnly = ""
	}
	// The write path is open now: start the group-commit pipeline the
	// replica open skipped (no-op when group commit is disabled).
	db.startCommitLoopLocked()
	pos := db.walPosLocked()
	log.Printf("sciql: promoted to primary at generation %d, offset %d (%d records)",
		pos.Gen, pos.Offset, pos.Records)
	return pos, nil
}

package core

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/gdk"
)

// Column-statistics persistence: the property claims a table accumulates
// must survive checkpoints (serialized in the manifest) and WAL crash
// recovery (replay maintains them through the ordinary DML paths), and
// must stay *sound* — never claim order or bounds the recovered data does
// not have.

// assertColSound re-derives ground truth for one loaded column and checks
// every claim against it.
func assertColSound(t *testing.T, label string, b *bat.BAT) {
	t.Helper()
	oracle := b.Clone()
	oracle.DeriveProps()
	if b.Sorted && !oracle.Sorted {
		t.Fatalf("%s: Sorted claimed but data unsorted", label)
	}
	if b.SortedDesc && !oracle.SortedDesc {
		t.Fatalf("%s: SortedDesc claimed but data not descending", label)
	}
	if b.Key {
		// DeriveProps only claims Key for monotonic data, but incremental
		// maintenance can prove more (every append outside the bounds is
		// fresh): check real uniqueness, not the weaker derivation.
		seen := map[string]bool{}
		for i := 0; i < b.Len(); i++ {
			if b.IsNull(i) {
				t.Fatalf("%s: Key claimed on NULL data", label)
			}
			s := b.Get(i).String()
			if seen[s] {
				t.Fatalf("%s: Key claimed but %s duplicated", label, s)
			}
			seen[s] = true
		}
	}
	lo, hi, ok := b.MinMax()
	olo, ohi, ook := oracle.MinMax()
	if ok && ook && (olo.Compare(lo) < 0 || ohi.Compare(hi) > 0) {
		t.Fatalf("%s: bounds [%v,%v] do not cover data [%v,%v]", label, lo, hi, olo, ohi)
	}
	if ok && !ook && oracle.Len() > oracle.NullCount() {
		t.Fatalf("%s: bounds claimed but underivable", label)
	}
}

func tableCol(t *testing.T, db *DB, table string, col int) *bat.BAT {
	t.Helper()
	tb, okT := db.Catalog().Table(table)
	if !okT {
		t.Fatalf("table %s missing", table)
	}
	return tb.Bats[col]
}

func TestStatsSurviveCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE TABLE m (k INT, v DOUBLE)`)
	db.MustQuery(`INSERT INTO m VALUES (1, 0.5), (2, 1.5), (3, 0.25), (7, 9.0)`)
	k := tableCol(t, db, "m", 0)
	if !k.Sorted || !k.Key {
		t.Fatalf("ascending unique load: Sorted=%v Key=%v", k.Sorted, k.Key)
	}
	if err := db.Close(); err != nil { // checkpoint: stats enter the manifest
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	k2 := tableCol(t, db2, "m", 0)
	if !k2.Sorted || !k2.Key {
		t.Fatalf("reloaded claims lost: Sorted=%v Key=%v", k2.Sorted, k2.Key)
	}
	if lo, hi, ok := k2.MinMaxInts(); !ok || lo != 1 || hi != 7 {
		t.Fatalf("reloaded bounds [%d,%d] ok=%v, want [1,7]", lo, hi, ok)
	}
	v2 := tableCol(t, db2, "m", 1)
	if lo, hi, ok := v2.MinMaxFloats(); !ok || lo != 0.25 || hi != 9.0 {
		t.Fatalf("reloaded float bounds [%g,%g] ok=%v, want [0.25,9]", lo, hi, ok)
	}
	assertColSound(t, "m.k", k2)
	assertColSound(t, "m.v", v2)
}

// TestStatsSurviveWALReplay reopens without Close: the segment store lags
// behind and the WAL tail replays inserts, updates and deletes. Replay
// goes through the ordinary DML paths, so claims that mutations broke
// before the crash must also be broken after recovery — and the ones that
// held must still hold.
func TestStatsSurviveWALReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE TABLE w (k INT, s VARCHAR)`)
	db.MustQuery(`INSERT INTO w VALUES (10, 'a'), (20, 'b'), (30, 'c')`)
	if err := db.Save(); err != nil { // checkpoint the sorted prefix
		t.Fatal(err)
	}
	// Post-checkpoint tail: an in-order append (claims hold), then an
	// overwrite that breaks Sorted and widens the bounds, then a delete.
	db.MustQuery(`INSERT INTO w VALUES (40, 'd')`)
	db.MustQuery(`UPDATE w SET k = 99 WHERE k = 20`)
	db.MustQuery(`DELETE FROM w WHERE k = 30`)
	// No Close: crash. The reopened database replays the tail.

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	k := tableCol(t, db2, "w", 0)
	if k.Sorted {
		t.Fatal("replayed UPDATE must clear Sorted")
	}
	if lo, hi, ok := k.MinMaxInts(); !ok || lo > 10 || hi < 99 {
		t.Fatalf("replayed bounds [%d,%d] ok=%v must cover [10,99]", lo, hi, ok)
	}
	assertColSound(t, "w.k", k)

	// And the recovered stats must not mislead a query: compare the
	// statistics-driven plan against the unindexed kernels.
	q := `SELECT k FROM w WHERE k >= 40 ORDER BY k`
	fast, err := db2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	prev := gdk.SetStatsEnabled(false)
	base, err := db2.Query(q)
	gdk.SetStatsEnabled(prev)
	if err != nil {
		t.Fatal(err)
	}
	if fast.NumRows() != base.NumRows() {
		t.Fatalf("stats query %d rows, baseline %d", fast.NumRows(), base.NumRows())
	}
	for i := 0; i < fast.NumRows(); i++ {
		if !fast.Value(i, 0).Equal(base.Value(i, 0)) {
			t.Fatalf("row %d: %v vs %v", i, fast.Value(i, 0), base.Value(i, 0))
		}
	}
	if got, _ := fast.Value(0, 0).AsInt(); fast.NumRows() != 2 || got != 40 {
		t.Fatalf("recovered query wrong: %d rows first=%v", fast.NumRows(), fast.Value(0, 0))
	}
}

// TestStatsFoldEmptyPredicate pins the planner-level constant fold: a
// predicate outside the column bounds compiles to an empty candidate list
// (visible in the MAL plan) and returns no rows, while a bound-internal
// predicate still scans.
func TestStatsFoldEmptyPredicate(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE f (a INT)`)
	db.MustQuery(`INSERT INTO f VALUES (1), (2), (3)`)
	r := db.MustQuery(`PLAN SELECT a FROM f WHERE a > 100`)
	if !strings.Contains(r.Text, "algebra.emptycand") {
		t.Fatalf("out-of-bounds predicate should fold to emptycand:\n%s", r.Text)
	}
	if rows := db.MustQuery(`SELECT a FROM f WHERE a > 100`); rows.NumRows() != 0 {
		t.Fatalf("folded predicate returned %d rows", rows.NumRows())
	}
	r = db.MustQuery(`PLAN SELECT a FROM f WHERE a > 2`)
	if strings.Contains(r.Text, "algebra.emptycand") {
		t.Fatalf("in-bounds predicate must not fold:\n%s", r.Text)
	}
	// After widening the bounds the same text must stop folding (plans are
	// re-optimized per execution; only parsing is cached).
	db.MustQuery(`INSERT INTO f VALUES (200)`)
	if rows := db.MustQuery(`SELECT a FROM f WHERE a > 100`); rows.NumRows() != 1 {
		t.Fatalf("stale fold: got %d rows after insert", rows.NumRows())
	}
}

// TestStatsNoFoldAboveLeftJoin is the regression test for the outer-join
// folding hole: a WHERE predicate the right column's bounds prove "matches
// every base row" must still drop the join's NULL-padded rows, so the
// statistics pass may not fold it away.
func TestStatsNoFoldAboveLeftJoin(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE lo (a INT)`)
	db.MustQuery(`CREATE TABLE ro (b INT)`)
	db.MustQuery(`INSERT INTO lo VALUES (1), (2), (3)`)
	db.MustQuery(`INSERT INTO ro VALUES (1), (2)`)
	rows := db.MustQuery(`SELECT lo.a, ro.b FROM lo LEFT JOIN ro ON lo.a = ro.b WHERE ro.b >= 1 ORDER BY lo.a`)
	if rows.NumRows() != 2 {
		t.Fatalf("WHERE above LEFT JOIN returned %d rows, want 2 (bound-full fold must not drop the NULL filter)", rows.NumRows())
	}
	// The unmatched row survives without the WHERE.
	rows = db.MustQuery(`SELECT lo.a FROM lo LEFT JOIN ro ON lo.a = ro.b ORDER BY lo.a`)
	if rows.NumRows() != 3 {
		t.Fatalf("LEFT JOIN returned %d rows, want 3", rows.NumRows())
	}
}

// TestStatsMergeJoinPlan pins the optimizer's join pick: sorted unique
// keys on both sides compile to algebra.mergejoin.
func TestStatsMergeJoinPlan(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE l (id INT, x INT)`)
	db.MustQuery(`CREATE TABLE r (id INT, y INT)`)
	db.MustQuery(`INSERT INTO l VALUES (1, 10), (2, 20), (3, 30)`)
	db.MustQuery(`INSERT INTO r VALUES (2, 200), (3, 300), (4, 400)`)
	p := db.MustQuery(`PLAN SELECT l.x, r.y FROM l JOIN r ON l.id = r.id`)
	if !strings.Contains(p.Text, "algebra.mergejoin") {
		t.Fatalf("sorted keys should pick the merge join:\n%s", p.Text)
	}
	rows := db.MustQuery(`SELECT l.x, r.y FROM l JOIN r ON l.id = r.id ORDER BY l.x`)
	if rows.NumRows() != 2 {
		t.Fatalf("merge join returned %d rows, want 2", rows.NumRows())
	}
	// Breaking the order on one side must flip the pick back to hash.
	db.MustQuery(`UPDATE l SET id = 9 WHERE id = 1`)
	p = db.MustQuery(`PLAN SELECT l.x, r.y FROM l JOIN r ON l.id = r.id`)
	if strings.Contains(p.Text, "algebra.mergejoin") {
		t.Fatalf("unsorted side must fall back to hash join:\n%s", p.Text)
	}
}

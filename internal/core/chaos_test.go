package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vfs"
)

// chaosOutcome records what each writer statement was told: acked means
// the engine returned nil, failed means it returned an error (injected
// fault or the degraded refusal that follows).
type chaosOutcome struct {
	mu     sync.Mutex
	acked  map[int64]bool
	failed map[int64]bool
}

func (o *chaosOutcome) record(v int64, err error) {
	o.mu.Lock()
	if err == nil {
		o.acked[v] = true
	} else {
		o.failed[v] = true
	}
	o.mu.Unlock()
}

// runChaos drives concurrent readers and writers against a FailFS-backed
// store, arms the given fault mid-run, and checks the issue's invariants:
// reads never fail, degraded latches exactly once, post-latch writes
// return ErrDegraded, and a crash-reopen yields every acked commit and
// nothing that was neither acked nor explicitly reported failed.
func runChaos(t *testing.T, name string, ckptBytes int64, arm func(fs *vfs.FailFS)) {
	t.Helper()
	// Leak check: the whole workload (writers, readers, cancelled and
	// refused statements) must release its goroutines. The slack absorbs
	// lazily started process-wide par pool workers.
	baseGoroutines := runtime.NumGoroutine() + 4
	defer func() {
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > baseGoroutines {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				m := runtime.Stack(buf, true)
				t.Fatalf("%s leaked goroutines: %d live, want <= %d\n%s",
					name, runtime.NumGoroutine(), baseGoroutines, buf[:m])
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	dir := filepath.Join(t.TempDir(), "db")
	fs := vfs.NewFailFS(nil)
	db, err := OpenWithFS(dir, ckptBytes, fs)
	if err != nil {
		t.Fatalf("OpenWithFS: %v", err)
	}
	db.MustQuery(`CREATE TABLE kv (a INT)`)

	const (
		writers   = 4
		perWriter = 60
		readers   = 2
	)
	out := &chaosOutcome{acked: map[int64]bool{}, failed: map[int64]bool{}}
	var (
		wg        sync.WaitGroup // writers
		rg        sync.WaitGroup // readers
		readErr   atomic.Pointer[error]
		stopRead  atomic.Bool
		sawRefuse atomic.Int64
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			for i := 0; i < perWriter; i++ {
				v := int64(w)*1_000_000 + int64(i)
				_, werr := s.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d)`, v))
				out.record(v, werr)
				if errors.Is(werr, ErrDegraded) {
					sawRefuse.Add(1)
				}
				if w == 0 && i == perWriter/3 {
					arm(fs) // pull the plug mid-workload
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for !stopRead.Load() {
				if _, rerr := db.Query(`SELECT COUNT(*) FROM kv`); rerr != nil {
					readErr.Store(&rerr)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Wait for writers, then stop the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos workload wedged")
	}
	stopRead.Store(true)
	rg.Wait()

	if p := readErr.Load(); p != nil {
		t.Fatalf("%s: read failed during chaos: %v", name, *p)
	}
	cause := db.Degraded()
	if cause == nil {
		t.Fatalf("%s: injected fault never latched degraded mode", name)
	}
	// Latch is sticky and first-cause-wins: hammer a few more writes and
	// re-read the cause.
	for i := 0; i < 3; i++ {
		if _, werr := db.Query(`INSERT INTO kv VALUES (-1)`); !errors.Is(werr, ErrDegraded) {
			t.Fatalf("%s: post-latch write = %v, want ErrDegraded", name, werr)
		}
	}
	if got := db.Degraded(); got.Error() != cause.Error() {
		t.Fatalf("%s: degraded cause drifted from %q to %q", name, cause, got)
	}
	if _, rerr := db.Query(`SELECT COUNT(*) FROM kv`); rerr != nil {
		t.Fatalf("%s: read after latch: %v", name, rerr)
	}

	// Crash-reopen (no Close: the unacked in-memory effects must not be
	// flushed) and compare against the acknowledgement record.
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("%s: reopen: %v", name, err)
	}
	defer db2.Close()
	if db2.Degraded() != nil {
		t.Fatalf("%s: reopen must clear degraded mode: %v", name, db2.Degraded())
	}
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatalf("%s: integrity after reopen: %v", name, err)
	}
	r := db2.MustQuery(`SELECT a FROM kv ORDER BY a`)
	present := map[int64]bool{}
	for i := 0; i < r.NumRows(); i++ {
		present[r.Value(i, 0).Int64()] = true
	}
	out.mu.Lock()
	defer out.mu.Unlock()
	for v := range out.acked {
		if !present[v] {
			t.Errorf("%s: acked commit %d missing after reopen", name, v)
		}
	}
	for v := range present {
		if !out.acked[v] && !out.failed[v] {
			t.Errorf("%s: reopened store holds %d, which was never submitted", name, v)
		}
	}
	t.Logf("%s: acked=%d failed=%d present=%d refused=%d cause=%v",
		name, len(out.acked), len(out.failed), len(present), sawRefuse.Load(), cause)
}

// TestChaosWALFsync: fsync failure on the WAL under a concurrent
// read/write workload.
func TestChaosWALFsync(t *testing.T) {
	runChaos(t, "wal-fsync", 0, func(fs *vfs.FailFS) {
		fs.FailOn(vfs.OpSync, "wal.log", 1, errors.New("chaos: fsync"))
	})
}

// TestChaosWALShortWrite: disk-full mid-record with frequent checkpoints
// (tiny threshold) racing the writers.
func TestChaosWALShortWrite(t *testing.T) {
	runChaos(t, "wal-shortwrite", 256, func(fs *vfs.FailFS) {
		fs.ShortWriteOn("wal.log", 1)
	})
}

// TestChaosManifestRename: the checkpoint's manifest rename fails while
// checkpoints are being triggered by the workload itself.
func TestChaosManifestRename(t *testing.T) {
	runChaos(t, "manifest-rename", 256, func(fs *vfs.FailFS) {
		fs.FailOn(vfs.OpRename, "catalog.json", 1, errors.New("chaos: rename"))
	})
}

// TestChaosSegmentWrite: a segment write fails with ENOSPC inside an
// auto-checkpoint.
func TestChaosSegmentWrite(t *testing.T) {
	runChaos(t, "segment-enospc", 256, func(fs *vfs.FailFS) {
		fs.ShortWriteOn(".bat", 1)
	})
}

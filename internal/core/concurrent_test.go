package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// The tests in this file are the concurrency gate of the engine: N reader
// goroutines run SELECTs over tables and arrays while a writer mutates
// them, and every reader asserts it observed a statement-atomic snapshot
// (invariants that hold before and after — but not in the middle of — each
// write statement). They are designed to run under `go test -race`.

// queryable is anything with a Query method (DB or Session).
type queryable interface {
	Query(string) (*Result, error)
}

// mustInt runs a single-cell integer query and fails the test on error.
func mustInt(t *testing.T, q queryable, sql string) int64 {
	t.Helper()
	got, err := queryInt(q.Query(sql))
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return got
}

// queryInt is the goroutine-safe variant of mustInt: it returns errors
// instead of failing the test (t.Fatal must not be called off the test
// goroutine).
func queryInt(r *Result, err error) (int64, error) {
	if err != nil {
		return 0, err
	}
	if r.NumRows() != 1 || r.NumCols() < 1 {
		return 0, fmt.Errorf("expected one cell, got %dx%d", r.NumRows(), r.NumCols())
	}
	v := r.Value(0, 0)
	if v.IsNull() {
		return 0, fmt.Errorf("unexpected NULL")
	}
	return v.AsInt()
}

// TestConcurrentReadersSeeConsistentSnapshots runs readers against three
// invariants while a writer fires mutating statements:
//
//   - acct: a guarded CASE update moves value between two rows in one
//     statement, so SUM(v) must never change;
//   - grid: every cell is incremented by one statement, so MIN(v) must
//     always equal MAX(v) (a half-applied update would split them);
//   - pairs: rows are inserted two per statement, so COUNT(*) stays even.
func TestConcurrentReadersSeeConsistentSnapshots(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE acct (id INT, v INT)`)
	var ins strings.Builder
	ins.WriteString(`INSERT INTO acct VALUES `)
	for i := 0; i < 64; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, 100)", i)
	}
	db.MustQuery(ins.String())
	const wantSum = 64 * 100

	db.MustQuery(`CREATE ARRAY grid (x INT DIMENSION[0:1:24], y INT DIMENSION[0:1:24], v INT DEFAULT 0)`)
	db.MustQuery(`CREATE TABLE pairs (a INT)`)

	const (
		readers    = 8
		writeStmts = 200
	)
	var (
		done atomic.Bool
		wg   sync.WaitGroup
		errs = make(chan error, readers)
	)

	reader := func() {
		defer wg.Done()
		sess := db.NewSession()
		defer sess.Close()
		for last := false; ; last = done.Load() {
			if last {
				return // one extra pass after the writer finished
			}
			got, err := queryInt(sess.Query(`SELECT SUM(v) FROM acct`))
			if err != nil {
				errs <- err
				return
			}
			if got != wantSum {
				errs <- fmt.Errorf("acct SUM(v) = %d, want %d (torn write visible)", got, wantSum)
				return
			}
			r, err := sess.Query(`SELECT MIN(v), MAX(v) FROM grid`)
			if err != nil {
				errs <- err
				return
			}
			lo, _ := r.Value(0, 0).AsInt()
			hi, _ := r.Value(0, 1).AsInt()
			if lo != hi {
				errs <- fmt.Errorf("grid MIN(v)=%d MAX(v)=%d: half-applied array update visible", lo, hi)
				return
			}
			got, err = queryInt(sess.Query(`SELECT COUNT(*) FROM pairs`))
			if err != nil {
				errs <- err
				return
			}
			if got%2 != 0 {
				errs <- fmt.Errorf("pairs COUNT(*)=%d, want even (torn insert visible)", got)
				return
			}
		}
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go reader()
	}

	for i := 0; i < writeStmts; i++ {
		a, b := i%64, (i+7)%64
		if a != b {
			db.MustQuery(fmt.Sprintf(
				`UPDATE acct SET v = CASE WHEN id = %d THEN v + 7 WHEN id = %d THEN v - 7 ELSE v END`, a, b))
		}
		db.MustQuery(`UPDATE grid SET v = v + 1`)
		db.MustQuery(fmt.Sprintf(`INSERT INTO pairs VALUES (%d), (%d)`, i, -i))
	}
	done.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// End state sanity.
	if got := mustInt(t, db, `SELECT COUNT(*) FROM pairs`); got != 2*writeStmts {
		t.Fatalf("pairs has %d rows, want %d", got, 2*writeStmts)
	}
	if got := mustInt(t, db, `SELECT MIN(v) FROM grid`); got != writeStmts {
		t.Fatalf("grid generation %d, want %d", got, writeStmts)
	}
}

// TestConcurrentReadersWithDeletesAndDDL stresses the snapshot path with
// deletion masks and object churn: a writer alternates DELETE/INSERT on
// one table (net row count invariant per statement pair is not guaranteed,
// but each statement is atomic, so COUNT(*)+deleted bookkeeping never
// tears) and creates/drops a scratch table, while readers query both; a
// reader hitting the scratch table accepts either a result or a clean
// "no such table" error, never a crash.
func TestConcurrentReadersWithDeletesAndDDL(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (id INT, tag INT)`)
	var ins strings.Builder
	ins.WriteString(`INSERT INTO t VALUES `)
	for i := 0; i < 128; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, %d)", i, i%2)
	}
	db.MustQuery(ins.String())

	var (
		done atomic.Bool
		wg   sync.WaitGroup
		errs = make(chan error, 8)
	)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				// Rows with tag=1 are deleted and re-inserted 64 at a
				// time, so the count is always 64 or 128.
				got, err := queryInt(db.Query(`SELECT COUNT(*) FROM t`))
				if err != nil {
					errs <- err
					return
				}
				if got != 64 && got != 128 {
					errs <- fmt.Errorf("t COUNT(*)=%d, want 64 or 128", got)
					return
				}
				if _, err := db.Query(`SELECT COUNT(*) FROM scratch`); err != nil &&
					!strings.Contains(err.Error(), "no such table") {
					errs <- fmt.Errorf("scratch query: %v", err)
					return
				}
			}
		}()
	}

	for i := 0; i < 60; i++ {
		db.MustQuery(`DELETE FROM t WHERE tag = 1`)
		var re strings.Builder
		re.WriteString(`INSERT INTO t VALUES `)
		for j := 0; j < 64; j++ {
			if j > 0 {
				re.WriteString(", ")
			}
			fmt.Fprintf(&re, "(%d, 1)", j)
		}
		db.MustQuery(re.String())
		db.MustQuery(`CREATE TABLE scratch (x INT)`)
		db.MustQuery(`INSERT INTO scratch VALUES (1)`)
		db.MustQuery(`DROP TABLE scratch`)
	}
	done.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSnapshotIsolationAcrossTransactions checks that concurrent readers
// never observe uncommitted transaction state, that rollback leaves them
// untouched, and that other sessions' writes are cleanly rejected while a
// transaction is open.
func TestSnapshotIsolationAcrossTransactions(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE bal (id INT, v INT)`)
	db.MustQuery(`INSERT INTO bal VALUES (1, 10), (2, 20)`)

	writer := db.NewSession()
	defer writer.Close()
	other := db.NewSession()
	defer other.Close()

	if _, err := writer.Query(`START TRANSACTION`); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Query(`UPDATE bal SET v = 999`); err != nil {
		t.Fatal(err)
	}
	// The owner reads its own writes ...
	if got := mustInt(t, writer, `SELECT SUM(v) FROM bal`); got != 2*999 {
		t.Fatalf("owner sees %d, want %d", got, 2*999)
	}
	// ... while everyone else still sees the committed snapshot.
	if got := mustInt(t, other, `SELECT SUM(v) FROM bal`); got != 30 {
		t.Fatalf("other session sees uncommitted sum %d, want 30", got)
	}
	if got := mustInt(t, db, `SELECT SUM(v) FROM bal`); got != 30 {
		t.Fatalf("default session sees uncommitted sum %d, want 30", got)
	}
	// Writes from other sessions are rejected, not blocked forever.
	if _, err := other.Query(`INSERT INTO bal VALUES (3, 30)`); err == nil ||
		!strings.Contains(err.Error(), "open transaction") {
		t.Fatalf("expected open-transaction rejection, got %v", err)
	}
	if _, err := writer.Query(`ROLLBACK`); err != nil {
		t.Fatal(err)
	}
	if got := mustInt(t, other, `SELECT SUM(v) FROM bal`); got != 30 {
		t.Fatalf("after rollback other session sees %d, want 30", got)
	}

	// A committed transaction becomes visible atomically.
	var (
		wg   sync.WaitGroup
		done atomic.Bool
		errs = make(chan error, 4)
	)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				got, err := queryInt(other.Query(`SELECT SUM(v) FROM bal`))
				if err != nil {
					errs <- err
					return
				}
				if got != 30 && got != 300+300 {
					errs <- fmt.Errorf("reader saw partial transaction: SUM=%d", got)
					return
				}
			}
		}()
	}
	if _, err := writer.Exec(`BEGIN; UPDATE bal SET v = 300 WHERE id = 1; UPDATE bal SET v = 300 WHERE id = 2; COMMIT`); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := mustInt(t, db, `SELECT SUM(v) FROM bal`); got != 600 {
		t.Fatalf("final sum %d, want 600", got)
	}

	// A session Close rolls back its open transaction.
	s := db.NewSession()
	if _, err := s.Query(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(`UPDATE bal SET v = 0`); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := mustInt(t, db, `SELECT SUM(v) FROM bal`); got != 600 {
		t.Fatalf("after session close sum %d, want 600", got)
	}
}

// TestConcurrentWriterSerialization runs several writer goroutines in
// autocommit; the writer lock must serialise them without losing rows.
func TestConcurrentWriterSerialization(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE log (w INT, i INT)`)
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				db.MustQuery(fmt.Sprintf(`INSERT INTO log VALUES (%d, %d)`, w, i))
			}
		}(w)
	}
	wg.Wait()
	if got := mustInt(t, db, `SELECT COUNT(*) FROM log`); got != writers*perWriter {
		t.Fatalf("log has %d rows, want %d", got, writers*perWriter)
	}
}

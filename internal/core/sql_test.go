package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/types"
)

// setupSales builds a small relational schema used across tests.
func setupSales(t *testing.T) *DB {
	t.Helper()
	db := New()
	for _, q := range []string{
		`CREATE TABLE items (id INT, name VARCHAR, price DOUBLE, qty INT)`,
		`INSERT INTO items VALUES
			(1, 'apple', 0.5, 100),
			(2, 'banana', 0.25, 150),
			(3, 'cherry', 3.0, 20),
			(4, 'date', 5.5, NULL),
			(5, 'elderberry', 8.0, 5)`,
		`CREATE TABLE orders (item_id INT, n INT)`,
		`INSERT INTO orders VALUES (1, 10), (1, 5), (2, 20), (3, 1), (9, 7)`,
	} {
		if _, err := db.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	return db
}

// row converts a result row to a compact string for comparison.
func rowStr(r *Result, i int) string {
	parts := make([]string, r.NumCols())
	for c := range parts {
		parts[c] = r.Value(i, c).String()
	}
	return strings.Join(parts, "|")
}

func allRows(r *Result) []string {
	out := make([]string, r.NumRows())
	for i := range out {
		out[i] = rowStr(r, i)
	}
	return out
}

func expectRows(t *testing.T, db *DB, q string, want []string) {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	got := allRows(res)
	if len(got) != len(want) {
		t.Fatalf("%s:\ngot  %v\nwant %v", q, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: row %d = %q, want %q", q, i, got[i], want[i])
		}
	}
}

func expectError(t *testing.T, db *DB, q, fragment string) {
	t.Helper()
	_, err := db.Query(q)
	if err == nil {
		t.Fatalf("%s: expected error containing %q", q, fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("%s: error %q does not contain %q", q, err, fragment)
	}
}

func TestSelectBasics(t *testing.T) {
	db := setupSales(t)
	expectRows(t, db, `SELECT name FROM items WHERE price > 1 ORDER BY name`,
		[]string{"cherry", "date", "elderberry"})
	expectRows(t, db, `SELECT name, price * 2 AS double_price FROM items WHERE id = 1`,
		[]string{"apple|1"})
	expectRows(t, db, `SELECT COUNT(*) FROM items`, []string{"5"})
	expectRows(t, db, `SELECT COUNT(qty) FROM items`, []string{"4"})
	expectRows(t, db, `SELECT SUM(qty), MIN(price), MAX(price) FROM items`,
		[]string{"275|0.25|8"})
	expectRows(t, db, `SELECT name FROM items WHERE qty IS NULL`, []string{"date"})
	expectRows(t, db, `SELECT name FROM items WHERE qty IS NOT NULL AND qty < 50 ORDER BY qty`,
		[]string{"elderberry", "cherry"})
}

func TestWhereNullSemantics(t *testing.T) {
	db := setupSales(t)
	// NULL qty is neither < 50 nor >= 50.
	expectRows(t, db, `SELECT COUNT(*) FROM items WHERE qty < 50 OR qty >= 50`, []string{"4"})
	expectRows(t, db, `SELECT name FROM items WHERE NOT (qty < 50) ORDER BY id`,
		[]string{"apple", "banana"})
}

func TestOrderLimitOffset(t *testing.T) {
	db := setupSales(t)
	expectRows(t, db, `SELECT name FROM items ORDER BY price DESC LIMIT 2`,
		[]string{"elderberry", "date"})
	expectRows(t, db, `SELECT name FROM items ORDER BY price DESC LIMIT 2 OFFSET 2`,
		[]string{"cherry", "apple"})
	expectRows(t, db, `SELECT name, price FROM items ORDER BY 2 DESC, 1 LIMIT 1`, []string{"elderberry|8"})
	expectRows(t, db, `SELECT name FROM items ORDER BY price LIMIT 0`, nil)
}

func TestGroupBy(t *testing.T) {
	db := setupSales(t)
	expectRows(t, db, `SELECT item_id, SUM(n) FROM orders GROUP BY item_id ORDER BY item_id`,
		[]string{"1|15", "2|20", "3|1", "9|7"})
	expectRows(t, db, `SELECT item_id, COUNT(*), AVG(n) FROM orders GROUP BY item_id HAVING COUNT(*) > 1`,
		[]string{"1|2|7.5"})
	// Expression over aggregates.
	expectRows(t, db, `SELECT item_id, SUM(n) * 2 FROM orders GROUP BY item_id HAVING SUM(n) >= 20`,
		[]string{"2|40"})
	// Grouping by an expression.
	expectRows(t, db, `SELECT id % 2, COUNT(*) FROM items GROUP BY id % 2 ORDER BY 1`,
		[]string{"0|2", "1|3"})
}

func TestJoins(t *testing.T) {
	db := setupSales(t)
	expectRows(t, db,
		`SELECT i.name, o.n FROM items i JOIN orders o ON i.id = o.item_id ORDER BY i.name, o.n`,
		[]string{"apple|5", "apple|10", "banana|20", "cherry|1"})
	// Comma join + WHERE equi predicate becomes a hash join (optimizer).
	expectRows(t, db,
		`SELECT i.name, o.n FROM items i, orders o WHERE i.id = o.item_id AND o.n > 5 ORDER BY o.n`,
		[]string{"apple|10", "banana|20"})
	// Left outer join keeps unmatched rows.
	expectRows(t, db,
		`SELECT i.name, o.n FROM items i LEFT JOIN orders o ON i.id = o.item_id WHERE i.id >= 4 ORDER BY i.id`,
		[]string{"date|null", "elderberry|null"})
	// Join with aggregation.
	expectRows(t, db,
		`SELECT i.name, SUM(o.n * i.price) AS revenue
		 FROM items i JOIN orders o ON i.id = o.item_id
		 GROUP BY i.name ORDER BY revenue DESC`,
		[]string{"apple|7.5", "banana|5", "cherry|3"})
}

func TestSubqueries(t *testing.T) {
	db := setupSales(t)
	expectRows(t, db,
		`SELECT t.s FROM (SELECT item_id, SUM(n) AS s FROM orders GROUP BY item_id) AS t
		 WHERE t.s > 5 ORDER BY t.s`,
		[]string{"7", "15", "20"})
	expectRows(t, db,
		`SELECT name FROM (SELECT name, price FROM items WHERE price > 1) AS expensive
		 ORDER BY price LIMIT 1`,
		[]string{"cherry"})
}

func TestUnionAll(t *testing.T) {
	db := setupSales(t)
	expectRows(t, db,
		`SELECT name FROM items WHERE id = 1 UNION ALL SELECT name FROM items WHERE id = 3`,
		[]string{"apple", "cherry"})
	// Int/float columns unify to float.
	expectRows(t, db, `SELECT 1 UNION ALL SELECT 2.5`, []string{"1", "2.5"})
}

func TestDistinct(t *testing.T) {
	db := setupSales(t)
	expectRows(t, db, `SELECT DISTINCT item_id FROM orders ORDER BY item_id`,
		[]string{"1", "2", "3", "9"})
}

func TestScalarFunctions(t *testing.T) {
	db := New()
	cases := map[string]string{
		`SELECT ABS(-7)`:                               "7",
		`SELECT ABS(-1.5)`:                             "1.5",
		`SELECT SQRT(16)`:                              "4",
		`SELECT FLOOR(2.7), CEIL(2.1)`:                 "2|3",
		`SELECT 7 % 3, MOD(7, 3)`:                      "1|1",
		`SELECT CAST(3.9 AS INT)`:                      "3",
		`SELECT CAST('42' AS INT) + 1`:                 "43",
		`SELECT COALESCE(NULL, NULL, 5)`:               "5",
		`SELECT NULLIF(3, 3)`:                          "null",
		`SELECT NULLIF(4, 3)`:                          "4",
		`SELECT GREATEST(1, 9, 4), LEAST(5, 2)`:        "9|2",
		`SELECT LENGTH('hello')`:                       "5",
		`SELECT UPPER('abc') || LOWER('DEF')`:          "ABCdef",
		`SELECT SUBSTRING('hello' FROM 2 FOR 3)`:       "ell",
		`SELECT CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END`: "b",
		`SELECT 1 + 2 * 3`:                             "7",
		`SELECT 10 / 4`:                                "2",
		`SELECT 10.0 / 4`:                              "2.5",
		`SELECT TRUE AND FALSE, TRUE OR FALSE`:         "false|true",
		`SELECT 'it''s'`:                               "it's",
		`SELECT ROUND(2.4), ROUND(2.5)`:                "2|3",
		`SELECT POWER(2, 10)`:                          "1024",
		`SELECT SIGN(-7), SIGN(0), SIGN(3.5)`:          "-1|0|1",
	}
	for q, want := range cases {
		res, err := db.Query(q)
		if err != nil {
			t.Errorf("%s: %v", q, err)
			continue
		}
		if got := rowStr(res, 0); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestLike(t *testing.T) {
	db := setupSales(t)
	expectRows(t, db, `SELECT name FROM items WHERE name LIKE '%rry' ORDER BY name`,
		[]string{"cherry", "elderberry"})
	expectRows(t, db, `SELECT name FROM items WHERE name LIKE '_a%' ORDER BY name`,
		[]string{"banana", "date"})
	expectRows(t, db, `SELECT name FROM items WHERE name NOT LIKE '%e%' ORDER BY name`,
		[]string{"banana"})
}

func TestInAndBetween(t *testing.T) {
	db := setupSales(t)
	expectRows(t, db, `SELECT name FROM items WHERE id IN (1, 3, 5) ORDER BY id`,
		[]string{"apple", "cherry", "elderberry"})
	expectRows(t, db, `SELECT name FROM items WHERE price BETWEEN 0.5 AND 3 ORDER BY price`,
		[]string{"apple", "cherry"})
	expectRows(t, db, `SELECT name FROM items WHERE id NOT BETWEEN 2 AND 4 ORDER BY id`,
		[]string{"apple", "elderberry"})
}

func TestUpdateDelete(t *testing.T) {
	db := setupSales(t)
	res, err := db.Query(`UPDATE items SET price = price * 2 WHERE id <= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	expectRows(t, db, `SELECT price FROM items WHERE id <= 2 ORDER BY id`, []string{"1", "0.5"})

	res, err = db.Query(`DELETE FROM items WHERE qty IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatal("expected 1 deleted")
	}
	expectRows(t, db, `SELECT COUNT(*) FROM items`, []string{"4"})
	// Deleted rows stay invisible to joins and scans.
	expectRows(t, db, `SELECT name FROM items WHERE price > 4 ORDER BY name`, []string{"elderberry"})
	// Re-insert appends after the deletion mask.
	db.MustQuery(`INSERT INTO items VALUES (6, 'fig', 2.0, 30)`)
	expectRows(t, db, `SELECT COUNT(*) FROM items`, []string{"5"})
}

func TestMultiSet(t *testing.T) {
	db := setupSales(t)
	// All SET expressions evaluate against the pre-update state.
	db.MustQuery(`UPDATE items SET price = qty, qty = CAST(price AS INT) WHERE id = 1`)
	expectRows(t, db, `SELECT price, qty FROM items WHERE id = 1`, []string{"100|0"})
}

func TestTransactions(t *testing.T) {
	db := setupSales(t)
	db.MustQuery(`START TRANSACTION`)
	db.MustQuery(`UPDATE items SET price = 999 WHERE id = 1`)
	db.MustQuery(`DELETE FROM items WHERE id = 2`)
	db.MustQuery(`CREATE TABLE scratch (a INT)`)
	expectRows(t, db, `SELECT price FROM items WHERE id = 1`, []string{"999"})
	db.MustQuery(`ROLLBACK`)
	expectRows(t, db, `SELECT price FROM items WHERE id = 1`, []string{"0.5"})
	expectRows(t, db, `SELECT COUNT(*) FROM items`, []string{"5"})
	expectError(t, db, `SELECT a FROM scratch`, "no such table")

	db.MustQuery(`BEGIN`)
	db.MustQuery(`UPDATE items SET price = 7 WHERE id = 1`)
	db.MustQuery(`COMMIT`)
	expectRows(t, db, `SELECT price FROM items WHERE id = 1`, []string{"7"})
	expectError(t, db, `COMMIT`, "no transaction")
}

func TestTransactionArrayRollback(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY a (x INT DIMENSION[0:1:4], v INT DEFAULT 1)`)
	db.MustQuery(`BEGIN`)
	db.MustQuery(`UPDATE a SET v = 9`)
	db.MustQuery(`ALTER ARRAY a ALTER DIMENSION x SET RANGE [0:1:8]`)
	db.MustQuery(`ROLLBACK`)
	expectRows(t, db, `SELECT SUM(v), COUNT(*) FROM a`, []string{"4|4"})
}

func TestErrors(t *testing.T) {
	db := setupSales(t)
	expectError(t, db, `SELECT nosuch FROM items`, "no such column")
	expectError(t, db, `SELECT name FROM nosuch`, "no such table")
	expectError(t, db, `SELECT name FROM items WHERE price`, "WHERE must be boolean")
	expectError(t, db, `SELECT name, SUM(qty) FROM items`, "GROUP BY")
	expectError(t, db, `SELECT 1/0`, "division by zero")
	expectError(t, db, `SELECT name + 1 FROM items`, "incompatible types")
	expectError(t, db, `CREATE TABLE items (a INT)`, "already exists")
	expectError(t, db, `INSERT INTO items VALUES (1)`, "expects 4 values")
	expectError(t, db, `UPDATE items SET nosuch = 1`, "no column")
	expectError(t, db, `SELECT i.name FROM items i, items i`, "duplicate table alias")
	expectError(t, db, `SELECT name FROM items HAVING price > 1`, "HAVING requires GROUP BY")
}

func TestSelectWithoutFrom(t *testing.T) {
	db := New()
	expectRows(t, db, `SELECT 1 + 1, 'x'`, []string{"2|x"})
	expectRows(t, db, `SELECT NULL`, []string{"null"})
}

func TestExplainAndPlan(t *testing.T) {
	db := setupSales(t)
	res := db.MustQuery(`EXPLAIN SELECT i.name FROM items i JOIN orders o ON i.id = o.item_id WHERE o.n > 1`)
	if !strings.Contains(res.Text, "join") || !strings.Contains(res.Text, "scan table items") {
		t.Errorf("explain output:\n%s", res.Text)
	}
	res = db.MustQuery(`PLAN SELECT name FROM items WHERE price > 1`)
	// The WHERE decomposes into a candidate-list theta selection; the
	// projection materialises the output column through the candidates.
	for _, frag := range []string{"function user.main", "sql.bind", "algebra.projection", "algebra.thetaselect", "sql.resultSet"} {
		if !strings.Contains(res.Text, frag) {
			t.Errorf("plan output lacks %q:\n%s", frag, res.Text)
		}
	}
}

// TestPlanShowsSeriesFiller verifies the paper's Fig. 3 claim at the MAL
// level: creating an array uses array.series / array.filler, visible in
// the PLAN output of a query over it.
func TestPlanShowsArrayOps(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0)`)
	res := db.MustQuery(`PLAN SELECT [x], [y], AVG(v) FROM m GROUP BY m[x:x+2][y:y+2]`)
	for _, frag := range []string{"array.binddim", "array.bindattr", "array.tileagg"} {
		if !strings.Contains(res.Text, frag) {
			t.Errorf("plan lacks %q:\n%s", frag, res.Text)
		}
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE TABLE t (a INT, s VARCHAR DEFAULT 'd')`)
	db.MustQuery(`INSERT INTO t VALUES (1, 'x'), (2, NULL)`)
	db.MustQuery(`DELETE FROM t WHERE a = 1`)
	db.MustQuery(`CREATE ARRAY m (x INT DIMENSION[0:1:3], v DOUBLE DEFAULT 0.5)`)
	db.MustQuery(`UPDATE m SET v = 1.5 WHERE x = 1`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expectRows(t, db2, `SELECT a, s FROM t`, []string{"2|null"})
	expectRows(t, db2, `SELECT v FROM m ORDER BY x`, []string{"0.5", "1.5", "0.5"})
	// Defaults survive: ALTER grows with the persisted default.
	db2.MustQuery(`ALTER ARRAY m ALTER DIMENSION x SET RANGE [0:1:4]`)
	expectRows(t, db2, `SELECT v FROM m WHERE x = 3`, []string{"0.5"})
}

func TestUnboundedArrayGrowth(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY ts (t INT DIMENSION, v DOUBLE DEFAULT 0)`)
	db.MustQuery(`INSERT INTO ts VALUES (10, 1.5)`)
	db.MustQuery(`INSERT INTO ts VALUES (12, 2.5)`)
	expectRows(t, db, `SELECT COUNT(*) FROM ts`, []string{"3"}) // cells 10,11,12
	expectRows(t, db, `SELECT v FROM ts ORDER BY t`, []string{"1.5", "0", "2.5"})
	db.MustQuery(`INSERT INTO ts VALUES (8, 0.5)`)
	expectRows(t, db, `SELECT COUNT(*) FROM ts`, []string{"5"})
	expectRows(t, db, `SELECT SUM(v) FROM ts`, []string{"4.5"})
}

func TestCellReferences(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY img (x INT DIMENSION[0:1:3], y INT DIMENSION[0:1:3], v INT DEFAULT 0)`)
	db.MustQuery(`UPDATE img SET v = 3 * x + y`)
	// EdgeDetection-style relative addressing (§4): left neighbour.
	res := db.MustQuery(`SELECT x, y, img[x-1][y] AS leftv FROM img WHERE x = 0 OR x = 1 ORDER BY x, y`)
	got := allRows(res)
	want := []string{
		"0|0|null", "0|1|null", "0|2|null",
		"1|0|0", "1|1|1", "1|2|2",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: %q, want %q", i, got[i], want[i])
		}
	}
	// Qualified attribute form and arithmetic.
	expectRows(t, db, `SELECT ABS(v - img[x-1][y].v) FROM img WHERE x = 1 AND y = 0`, []string{"3"})
}

func TestArrayJoinTable(t *testing.T) {
	// §4 AreasOfInterest: join an array with a bounding-box table.
	db := New()
	db.MustQuery(`CREATE ARRAY img (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 7)`)
	db.MustQuery(`CREATE TABLE maskt (x1 INT, y1 INT, x2 INT, y2 INT)`)
	db.MustQuery(`INSERT INTO maskt VALUES (0, 0, 1, 1), (3, 3, 3, 3)`)
	res := db.MustQuery(`SELECT img.x, img.y, img.v FROM img, maskt
		WHERE img.x BETWEEN maskt.x1 AND maskt.x2 AND img.y BETWEEN maskt.y1 AND maskt.y2
		ORDER BY img.x, img.y`)
	if res.NumRows() != 5 {
		t.Fatalf("got %d rows, want 5 (2x2 box + 1x1 box)", res.NumRows())
	}
}

func TestValueGroupingOnArray(t *testing.T) {
	// Histogram (§4): value-based GROUP BY over an array's attribute.
	db := New()
	db.MustQuery(`CREATE ARRAY img (x INT DIMENSION[0:1:4], v INT DEFAULT 0)`)
	db.MustQuery(`UPDATE img SET v = x % 2`)
	expectRows(t, db, `SELECT v, COUNT(*) FROM img GROUP BY v ORDER BY v`,
		[]string{"0|2", "1|2"})
}

func TestHolesIgnoredByAggregates(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY a (x INT DIMENSION[0:1:4], v INT DEFAULT 2)`)
	db.MustQuery(`DELETE FROM a WHERE x = 1`)
	expectRows(t, db, `SELECT SUM(v), COUNT(v), COUNT(*) FROM a`, []string{"6|3|4"})
}

func TestDimensionStep(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY s (x INT DIMENSION[0:2:10], v INT DEFAULT 1)`)
	expectRows(t, db, `SELECT COUNT(*) FROM s`, []string{"5"})
	expectRows(t, db, `SELECT x FROM s ORDER BY x`, []string{"0", "2", "4", "6", "8"})
	db.MustQuery(`UPDATE s SET v = x`)
	// Tiling respects the step grid: [x:x+4) covers two cells.
	res := db.MustQuery(`SELECT [x], SUM(v) FROM s GROUP BY s[x:x+4]`)
	g := res.Cols[1]
	if g.Get(0).Int64() != 2 || g.Get(4).Int64() != 8 {
		t.Errorf("stepped tiling wrong: %v %v", g.Get(0), g.Get(4))
	}
}

func TestNegativeStepDimension(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY d (x INT DIMENSION[4:-1:0], v INT DEFAULT 0)`)
	expectRows(t, db, `SELECT COUNT(*) FROM d`, []string{"4"})
	expectRows(t, db, `SELECT x FROM d ORDER BY x`, []string{"1", "2", "3", "4"})
}

func TestMultiAttributeArray(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY rgb (x INT DIMENSION[0:1:2], r INT DEFAULT 0, g INT DEFAULT 0, b INT DEFAULT 0)`)
	db.MustQuery(`UPDATE rgb SET r = 255, g = x WHERE x = 1`)
	expectRows(t, db, `SELECT r, g, b FROM rgb ORDER BY x`, []string{"0|0|0", "255|1|0"})
	// Cell references must name the attribute.
	expectError(t, db, `SELECT rgb[x] FROM rgb`, "qualify")
	expectRows(t, db, `SELECT rgb[0].r FROM rgb WHERE x = 0`, []string{"0"})
}

func TestInsertIntoArrayWithColumnList(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY a (x INT DIMENSION[0:1:3], p INT DEFAULT 1, q INT DEFAULT 2)`)
	db.MustQuery(`INSERT INTO a (x, q) VALUES (1, 99)`)
	expectRows(t, db, `SELECT p, q FROM a WHERE x = 1`, []string{"1|99"})
	expectError(t, db, `INSERT INTO a (q) VALUES (5)`, "must provide dimension")
	expectError(t, db, `INSERT INTO a VALUES (9, 1, 1)`, "outside the dimension ranges")
}

func TestStatusText(t *testing.T) {
	db := New()
	res := db.MustQuery(`CREATE ARRAY m (x INT DIMENSION[0:1:4], v INT)`)
	if !strings.Contains(res.Text, "4 cells") {
		t.Errorf("status = %q", res.Text)
	}
}

func TestGridRender(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY m (x INT DIMENSION[0:1:2], y INT DIMENSION[0:1:2], v INT DEFAULT 0)`)
	db.MustQuery(`UPDATE m SET v = 2 * x + y`)
	res := db.MustQuery(`SELECT [x], [y], v FROM m`)
	grid, err := res.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(grid, "y=1") || !strings.Contains(grid, "y=0") {
		t.Errorf("grid:\n%s", grid)
	}
}

func TestResultString(t *testing.T) {
	db := setupSales(t)
	res := db.MustQuery(`SELECT id, name FROM items WHERE id <= 2 ORDER BY id`)
	s := res.String()
	if !strings.Contains(s, "apple") || !strings.Contains(s, "id") {
		t.Errorf("render:\n%s", s)
	}
}

func TestValuesNullAndDefaults(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT, b VARCHAR DEFAULT 'dflt', c DOUBLE)`)
	db.MustQuery(`INSERT INTO t (a) VALUES (1)`)
	expectRows(t, db, `SELECT a, b, c FROM t`, []string{"1|dflt|null"})
}

func TestTypeCoercionOnInsert(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a DOUBLE, b INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1, 2.9)`)
	expectRows(t, db, `SELECT a, b FROM t`, []string{"1|2"})
}

func TestCaseWithNullCondition(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (NULL), (5)`)
	// NULL condition falls through to ELSE.
	expectRows(t, db, `SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t`,
		[]string{"small", "big"})
}

func TestAggregatesEmptyInput(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	expectRows(t, db, `SELECT COUNT(*), SUM(a), MIN(a), AVG(a) FROM t`,
		[]string{"0|null|null|null"})
	// GROUP BY over empty input yields no rows.
	expectRows(t, db, `SELECT a, COUNT(*) FROM t GROUP BY a`, nil)
}

func TestGroupByNulls(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT, b INT)`)
	db.MustQuery(`INSERT INTO t VALUES (NULL, 1), (NULL, 2), (1, 3), (1, 4), (2, 5)`)
	expectRows(t, db, `SELECT a, SUM(b) FROM t GROUP BY a ORDER BY a`,
		[]string{"null|3", "1|7", "2|5"})
}

func TestSumTypeResult(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT, f DOUBLE)`)
	db.MustQuery(`INSERT INTO t VALUES (1, 1.5), (2, 2.5)`)
	res := db.MustQuery(`SELECT SUM(a), SUM(f), AVG(a) FROM t`)
	if res.Kinds[0] != types.KindInt || res.Kinds[1] != types.KindFloat || res.Kinds[2] != types.KindFloat {
		t.Errorf("kinds = %v", res.Kinds)
	}
}

// TestCandidateExecutionEndToEnd drives the candidate-threading paths
// through the whole engine: theta/range chains over tables with deleted
// rows, OR-unions of candidate lists, residual predicates over survivors,
// LIMIT slicing the candidate list, and the fused group-by path.
func TestCandidateExecutionEndToEnd(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE ev (id INT, grp INT, val DOUBLE, tag VARCHAR)`)
	for i := 0; i < 500; i++ {
		db.MustQuery(fmt.Sprintf(`INSERT INTO ev VALUES (%d, %d, %g, 't%d')`,
			i, i%7, float64(i)*0.5, i%3))
	}
	// Punch holes so tablecand is a real oid list, not a dense range.
	db.MustQuery(`DELETE FROM ev WHERE id % 10 = 3`)

	// Theta + range chain with a residual over the survivors.
	expectRows(t, db, `SELECT id FROM ev WHERE id >= 100 AND id < 110 AND grp = 2 AND id + grp > 0`,
		[]string{"100", "107"})
	// OR branches union candidate lists (id 3 is deleted, 496 survives).
	expectRows(t, db, `SELECT id FROM ev WHERE id < 4 OR id > 495`,
		[]string{"0", "1", "2", "496", "497", "498", "499"})
	// LIMIT slices the candidate list before any column materialises.
	expectRows(t, db, `SELECT id FROM ev WHERE id > 400 LIMIT 3 OFFSET 2`,
		[]string{"404", "405", "406"})
	// Fused group path: bare-column keys and aggregate args over a
	// candidate list, COUNT(*) via the gid column.
	expectRows(t, db, `SELECT grp, COUNT(*), SUM(val) FROM ev WHERE id < 20 AND grp < 2 GROUP BY grp`,
		[]string{"0|3|10.5", "1|3|12"})
	// Column-vs-column residual evaluated over the atom's survivors:
	// id - grp is id rounded down to a multiple of 7, > 490 only for 497+.
	expectRows(t, db, `SELECT id FROM ev WHERE id - grp > 490 AND id > 400`,
		[]string{"497", "498", "499"})
}

package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire format of a bootstrap snapshot (what GET /repl/snapshot carries),
// little-endian throughout:
//
//	header  magic   [4]byte "SCQS"
//	        version uint16  (1)
//	        gen     uint64  log generation the snapshot pairs with
//	        offset  uint64  log byte offset at capture time
//	        records uint64  log record count at capture time
//	files   uvarint name length (0 terminates the stream)
//	        name    []byte  path relative to the db dir
//	        uvarint data length
//	        data    []byte
//	        crc32   uint32  IEEE, over the data
//
// Each file is individually checksummed so a transfer corrupted in
// transit fails loudly at decode instead of installing a broken store.

const (
	snapMagic   = "SCQS"
	snapVersion = 1

	// maxSnapFile bounds one decoded snapshot file, keeping a corrupted
	// length prefix from driving a huge allocation.
	maxSnapFile = 1 << 32
)

// EncodeSnapshot serialises a bootstrap snapshot for the wire.
func EncodeSnapshot(pos WALPos, files []SnapshotFile) []byte {
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	var hdr [2 + 8 + 8 + 8]byte
	binary.LittleEndian.PutUint16(hdr[0:], snapVersion)
	binary.LittleEndian.PutUint64(hdr[2:], pos.Gen)
	binary.LittleEndian.PutUint64(hdr[10:], uint64(pos.Offset))
	binary.LittleEndian.PutUint64(hdr[18:], uint64(pos.Records))
	buf.Write(hdr[:])
	var lenBuf [binary.MaxVarintLen64]byte
	for _, f := range files {
		n := binary.PutUvarint(lenBuf[:], uint64(len(f.Name)))
		buf.Write(lenBuf[:n])
		buf.WriteString(f.Name)
		n = binary.PutUvarint(lenBuf[:], uint64(len(f.Data)))
		buf.Write(lenBuf[:n])
		buf.Write(f.Data)
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(f.Data))
		buf.Write(crc[:])
	}
	buf.WriteByte(0) // zero name length: end of files
	return buf.Bytes()
}

// DecodeSnapshot parses an encoded bootstrap snapshot, verifying the
// per-file checksums.
func DecodeSnapshot(data []byte) (WALPos, []SnapshotFile, error) {
	r := bytes.NewReader(data)
	hdr := make([]byte, 4+2+8+8+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return WALPos{}, nil, fmt.Errorf("snapshot: short header: %v", err)
	}
	if string(hdr[:4]) != snapMagic {
		return WALPos{}, nil, fmt.Errorf("snapshot: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != snapVersion {
		return WALPos{}, nil, fmt.Errorf("snapshot: unsupported version %d", v)
	}
	pos := WALPos{
		Gen:     binary.LittleEndian.Uint64(hdr[6:]),
		Offset:  int64(binary.LittleEndian.Uint64(hdr[14:])),
		Records: int64(binary.LittleEndian.Uint64(hdr[22:])),
	}
	var files []SnapshotFile
	for {
		nameLen, err := binary.ReadUvarint(r)
		if err != nil {
			return WALPos{}, nil, fmt.Errorf("snapshot: truncated file list: %v", err)
		}
		if nameLen == 0 {
			break
		}
		if nameLen > 4096 {
			return WALPos{}, nil, fmt.Errorf("snapshot: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return WALPos{}, nil, fmt.Errorf("snapshot: truncated name: %v", err)
		}
		dataLen, err := binary.ReadUvarint(r)
		if err != nil {
			return WALPos{}, nil, fmt.Errorf("snapshot: truncated length of %s: %v", name, err)
		}
		if dataLen > maxSnapFile {
			return WALPos{}, nil, fmt.Errorf("snapshot: implausible size %d of %s", dataLen, name)
		}
		body := make([]byte, dataLen)
		if _, err := io.ReadFull(r, body); err != nil {
			return WALPos{}, nil, fmt.Errorf("snapshot: truncated data of %s: %v", name, err)
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return WALPos{}, nil, fmt.Errorf("snapshot: truncated checksum of %s: %v", name, err)
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crc[:]) {
			return WALPos{}, nil, fmt.Errorf("snapshot: checksum failure on %s", name)
		}
		files = append(files, SnapshotFile{Name: string(name), Data: body})
	}
	return pos, files, nil
}

package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/gdk"
	"repro/internal/par"
	"repro/internal/rel"
)

// The equivalence gate of the join-ordering pass: every query must return
// the same row set in syntactic, greedy and DP mode — with statistics on
// or off, serial or forced-parallel. The pass only ever changes the shape
// of the join tree, so any divergence here is a key/residual remapping
// bug.

// joinOrderModes in comparison order: syntactic is the never-reordered
// reference the other two must match.
var joinOrderModes = []rel.JoinOrderMode{
	rel.JoinOrderSyntactic,
	rel.JoinOrderGreedy,
	rel.JoinOrderDP,
}

// buildJoinOrderDB creates the workload shapes the ordering pass must
// handle: a large fact table, run-length and low-cardinality keys, a
// sorted unique column, string keys, heavy key skew, a tiny table and an
// empty one. All data is deterministic.
func buildJoinOrderDB(t testing.TB) *DB {
	t.Helper()
	db := New()
	ddl := []string{
		`CREATE TABLE big (id INT, ka INT, kb INT, ks STRING, v INT)`,
		`CREATE TABLE runs (k INT, w INT)`,
		`CREATE TABLE lowcard (k INT, w INT)`,
		`CREATE TABLE sorted (id INT, w INT)`,
		`CREATE TABLE strs (s STRING, t INT)`,
		`CREATE TABLE skew (k INT, u INT, w INT)`,
		`CREATE TABLE tiny (k INT, w INT)`,
		`CREATE TABLE mt (k INT, w INT)`,
	}
	for _, q := range ddl {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	insert := func(table string, rows []string) {
		t.Helper()
		q := fmt.Sprintf("INSERT INTO %s VALUES %s", table, strings.Join(rows, ", "))
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("insert into %s: %v", table, err)
		}
	}
	var rows []string
	for i := 0; i < 200; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %d, 's%d', %d)", i, i%20, i/40, i%7, (i*37)%1000))
	}
	insert("big", rows)
	rows = rows[:0]
	for i := 0; i < 60; i++ { // k comes out sorted in runs of 10
		rows = append(rows, fmt.Sprintf("(%d, %d)", i/10, i%5))
	}
	insert("runs", rows)
	rows = rows[:0]
	for i := 0; i < 20; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d)", i%5, i%3))
	}
	insert("lowcard", rows)
	rows = rows[:0]
	for i := 0; i < 100; i++ { // id is sorted and unique
		rows = append(rows, fmt.Sprintf("(%d, %d)", i, (i*13)%7))
	}
	insert("sorted", rows)
	rows = rows[:0]
	for i := 0; i < 21; i++ {
		rows = append(rows, fmt.Sprintf("('s%d', %d)", i%7, i))
	}
	insert("strs", rows)
	rows = rows[:0]
	for i := 0; i < 60; i++ { // 90% of keys collide on 0; u is unique
		k := 0
		if i >= 54 {
			k = i % 5
		}
		rows = append(rows, fmt.Sprintf("(%d, %d, %d)", k, i, i%4))
	}
	insert("skew", rows)
	rows = rows[:0]
	for i := 0; i < 8; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d)", i, i%2))
	}
	insert("tiny", rows)
	return db
}

// joinOrderQueries spans 3- to 8-way joins over the workload shapes,
// including cross-relation residuals, self-join aliases, skewed keys, an
// empty relation and an outer-join boundary.
var joinOrderQueries = []struct{ name, sql string }{
	{"star3", `SELECT b.id, l.w, s.w FROM big b, lowcard l, sorted s
		WHERE b.ka = l.k AND b.id = s.id`},
	{"star3_filtered", `SELECT b.id, l.w, s.w FROM big b, lowcard l, sorted s
		WHERE b.ka = l.k AND b.id = s.id AND s.w < 3 AND b.v >= 100`},
	{"chain4", `SELECT b.id, r.w, l.w, tn.w FROM big b, runs r, lowcard l, tiny tn
		WHERE b.kb = r.k AND r.w = l.k AND l.w = tn.k`},
	{"string4", `SELECT b.id, st.t, l.w FROM big b, strs st, lowcard l, tiny tn
		WHERE b.ks = st.s AND b.ka = l.k AND l.w = tn.k`},
	{"selfjoin3", `SELECT l1.w, l2.w, tn.k FROM lowcard l1, lowcard l2, tiny tn
		WHERE l1.k = l2.k AND l1.w = tn.k`},
	{"residual4", `SELECT b.id, r.w, l.w FROM big b, runs r, lowcard l, tiny tn
		WHERE b.kb = r.k AND r.w = l.k AND l.w = tn.k AND b.v > l.w * 10`},
	{"skew5", `SELECT b.id, sk.w, l.w FROM big b, skew sk, lowcard l, sorted s, tiny tn
		WHERE b.ka = sk.k AND sk.k = l.k AND b.id = s.id AND l.w = tn.k`},
	{"empty5", `SELECT b.id FROM big b, runs r, lowcard l, mt m, sorted s
		WHERE b.kb = r.k AND r.w = l.k AND l.w = m.k AND b.id = s.id`},
	{"outer_boundary", `SELECT b.id, l.w, tn.w, s.w, r.w
		FROM big b JOIN lowcard l ON b.ka = l.k
		LEFT JOIN tiny tn ON l.w = tn.k
		JOIN sorted s ON b.id = s.id
		JOIN runs r ON b.kb = r.k`},
	{"8way", `SELECT b.id, r.w, l.w, s.w, st.t, sk.k, tn.w, tn2.w
		FROM big b, runs r, lowcard l, sorted s, strs st, skew sk, tiny tn, tiny tn2
		WHERE b.kb = r.k AND r.w = l.k AND b.id = s.id AND b.ks = st.s
		AND s.id = sk.u AND l.w = tn.k AND tn.w = tn2.k`},
}

// sortedRows normalizes a result to its sorted row-string multiset.
func sortedRows(t *testing.T, db *DB, q string) []string {
	t.Helper()
	r, err := db.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	rows := make([]string, r.NumRows())
	var sb strings.Builder
	for i := range rows {
		sb.Reset()
		for c := 0; c < r.NumCols(); c++ {
			if c > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(r.Value(i, c).String())
		}
		rows[i] = sb.String()
	}
	sort.Strings(rows)
	return rows
}

func setJoinOrder(t *testing.T, m rel.JoinOrderMode) {
	t.Helper()
	prev := rel.SetJoinOrdering(m)
	t.Cleanup(func() { rel.SetJoinOrdering(prev) })
}

func TestJoinOrderEquiv(t *testing.T) {
	db := buildJoinOrderDB(t)
	for _, stats := range []bool{true, false} {
		for _, threads := range []int{1, 8} {
			t.Run(fmt.Sprintf("stats=%v/threads=%d", stats, threads), func(t *testing.T) {
				prevStats := gdk.SetStatsEnabled(stats)
				prevThreads := par.SetThreads(threads)
				t.Cleanup(func() {
					gdk.SetStatsEnabled(prevStats)
					par.SetThreads(prevThreads)
				})
				for _, q := range joinOrderQueries {
					t.Run(q.name, func(t *testing.T) {
						var ref []string
						for _, mode := range joinOrderModes {
							setJoinOrder(t, mode)
							got := sortedRows(t, db, q.sql)
							if mode == rel.JoinOrderSyntactic {
								ref = got
								if q.name == "empty5" && len(ref) != 0 {
									t.Fatalf("empty5 returned %d rows, want 0", len(ref))
								}
								continue
							}
							if len(got) != len(ref) {
								t.Fatalf("%v returned %d rows, syntactic %d", mode, len(got), len(ref))
							}
							for i := range got {
								if got[i] != ref[i] {
									t.Fatalf("%v row %d = %q, syntactic %q", mode, i, got[i], ref[i])
								}
							}
						}
					})
				}
			})
		}
	}
}

// TestJoinOrderOrderByIdentical pins the stronger contract for ordered
// queries: with a full-row ORDER BY the rendered result must be
// byte-identical across modes.
func TestJoinOrderOrderByIdentical(t *testing.T) {
	db := buildJoinOrderDB(t)
	q := `SELECT b.id, l.w, s.w FROM big b, lowcard l, sorted s
		WHERE b.ka = l.k AND b.id = s.id ORDER BY b.id, l.w, s.w`
	var ref string
	for _, mode := range joinOrderModes {
		setJoinOrder(t, mode)
		got := db.MustQuery(q).String()
		if mode == rel.JoinOrderSyntactic {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("mode %v rendered differently:\n%s\n--- syntactic ---\n%s", mode, got, ref)
		}
	}
}

// TestJoinOrderEmptyShortCircuit is the regression test for the
// provably-empty estimate: an impossible predicate on the largest
// relation must (a) return no rows in every mode, and (b) in greedy mode
// place that relation first with the emptycand fold intact, so the whole
// join tree short-circuits.
func TestJoinOrderEmptyShortCircuit(t *testing.T) {
	db := buildJoinOrderDB(t)
	// big.v ranges over [0, 999]: the bound is provably unsatisfiable.
	q := `SELECT b.id FROM big b, runs r, lowcard l
		WHERE b.kb = r.k AND r.w = l.k AND b.v > 100000`
	for _, mode := range joinOrderModes {
		setJoinOrder(t, mode)
		if got := db.MustQuery(q).NumRows(); got != 0 {
			t.Fatalf("mode %v: impossible predicate returned %d rows", mode, got)
		}
	}
	setJoinOrder(t, rel.JoinOrderGreedy)
	plan := db.MustQuery("EXPLAIN " + q).String()
	if !strings.Contains(plan, "select candidates none") {
		t.Fatalf("emptycand fold missing from plan:\n%s", plan)
	}
	if !strings.Contains(plan, "(order greedy: b,") {
		t.Fatalf("provably-empty big relation not ordered first:\n%s", plan)
	}
}

// TestJoinOrderDPFallbackWideJoin exercises the DP cap: an 11-relation
// join exceeds dpMaxRels, so DP mode must fall back to greedy and still
// return correct rows.
func TestJoinOrderDPFallbackWideJoin(t *testing.T) {
	db := buildJoinOrderDB(t)
	var from, where []string
	for i := 1; i <= 11; i++ {
		from = append(from, fmt.Sprintf("tiny t%d", i))
		if i > 1 {
			where = append(where, fmt.Sprintf("t%d.k = t%d.k", i-1, i))
		}
	}
	q := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s",
		strings.Join(from, ", "), strings.Join(where, " AND "))
	for _, mode := range joinOrderModes {
		setJoinOrder(t, mode)
		if got := db.MustQuery(q).Value(0, 0).String(); got != "8" {
			t.Fatalf("mode %v: 11-way self-join count = %s, want 8", mode, got)
		}
	}
}

package core

import (
	"testing"

	"repro/internal/types"
)

// grid extracts a 2-D single-attribute array result into a [x][y] value map
// keyed by coordinates.
func gridOf(t *testing.T, r *Result) map[[2]int64]types.Value {
	t.Helper()
	if !r.IsArray {
		t.Fatalf("expected an array result")
	}
	if len(r.Shape) != 2 {
		t.Fatalf("expected 2-D result, got %d-D", len(r.Shape))
	}
	attr := -1
	for i, d := range r.Dims {
		if !d {
			attr = i
		}
	}
	out := map[[2]int64]types.Value{}
	coords := make([]int64, 2)
	for p := 0; p < r.Shape.Cells(); p++ {
		r.Shape.Coords(p, coords)
		out[[2]int64{coords[0], coords[1]}] = r.Cols[attr].Get(p)
	}
	return out
}

func wantInt(t *testing.T, g map[[2]int64]types.Value, x, y, want int64) {
	t.Helper()
	v := g[[2]int64{x, y}]
	if v.IsNull() {
		t.Errorf("(%d,%d) = null, want %d", x, y, want)
		return
	}
	iv, _ := v.AsInt()
	if iv != want {
		t.Errorf("(%d,%d) = %v, want %d", x, y, v, want)
	}
}

func wantNull(t *testing.T, g map[[2]int64]types.Value, x, y int64) {
	t.Helper()
	if v := g[[2]int64{x, y}]; !v.IsNull() {
		t.Errorf("(%d,%d) = %v, want null", x, y, v)
	}
}

// TestFigure1 walks the paper's Figure 1 end to end with the exact
// statements from §2, checking every cell of every sub-figure.
func TestFigure1(t *testing.T) {
	db := New()

	// Fig. 1(a): CREATE ARRAY materialises a 4x4 zero matrix.
	if _, err := db.Query(`CREATE ARRAY matrix (
		x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4],
		v INT DEFAULT 0)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT [x], [y], v FROM matrix`)
	if err != nil {
		t.Fatal(err)
	}
	g := gridOf(t, res)
	for x := int64(0); x < 4; x++ {
		for y := int64(0); y < 4; y++ {
			wantInt(t, g, x, y, 0)
		}
	}

	// Fig. 1(b): guarded UPDATE with dimensions as bound variables.
	if _, err := db.Query(`UPDATE matrix SET v = CASE
		WHEN x > y THEN x + y WHEN x < y THEN x - y ELSE 0 END`); err != nil {
		t.Fatal(err)
	}
	res = db.MustQuery(`SELECT [x], [y], v FROM matrix`)
	g = gridOf(t, res)
	wantFig1b := func() {
		for x := int64(0); x < 4; x++ {
			for y := int64(0); y < 4; y++ {
				switch {
				case x > y:
					wantInt(t, g, x, y, x+y)
				case x < y:
					wantInt(t, g, x, y, x-y)
				default:
					wantInt(t, g, x, y, 0)
				}
			}
		}
	}
	wantFig1b()
	// Spot-check the printed grid of Fig. 1(b): (3,2)=5, (0,3)=-3.
	wantInt(t, g, 3, 2, 5)
	wantInt(t, g, 0, 3, -3)

	// Fig. 1(c): INSERT overwrites the diagonal with x*y, DELETE punches
	// holes above the diagonal.
	if _, err := db.Query(`INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`DELETE FROM matrix WHERE x > y`); err != nil {
		t.Fatal(err)
	}
	res = db.MustQuery(`SELECT [x], [y], v FROM matrix`)
	g = gridOf(t, res)
	checkFig1c := func(g map[[2]int64]types.Value) {
		for x := int64(0); x < 4; x++ {
			for y := int64(0); y < 4; y++ {
				switch {
				case x > y:
					wantNull(t, g, x, y)
				case x < y:
					wantInt(t, g, x, y, x-y)
				default:
					wantInt(t, g, x, y, x*y)
				}
			}
		}
	}
	checkFig1c(g)
	wantInt(t, g, 3, 3, 9)
	wantInt(t, g, 2, 2, 4)

	// Fig. 1(d,e): 2x2 tiling with AVG and anchor HAVING filter.
	res = db.MustQuery(`SELECT [x], [y], AVG(v) FROM matrix
		GROUP BY matrix[x:x+2][y:y+2]
		HAVING x MOD 2 = 1 AND y MOD 2 = 1`)
	if !res.IsArray {
		t.Fatal("tiling result should be an array")
	}
	// The paper's Fig. 1(e): result keeps the full 4x4 shape.
	if res.Shape.Cells() != 16 {
		t.Fatalf("tiling result has %d cells, want 16 (shape preserved)", res.Shape.Cells())
	}
	g = gridOf(t, res)
	check := func(x, y int64, want float64) {
		t.Helper()
		v := g[[2]int64{x, y}]
		if v.IsNull() {
			t.Errorf("avg(%d,%d) = null, want %v", x, y, want)
			return
		}
		f, _ := v.AsFloat()
		if diff := f - want; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("avg(%d,%d) = %v, want %v", x, y, f, want)
		}
	}
	check(1, 1, 4.0/3.0) // printed as 1.33 in the figure
	check(1, 3, -1.5)
	check(3, 3, 9)
	wantNull(t, g, 3, 1) // all-hole tile
	// All non-anchor cells are null.
	for x := int64(0); x < 4; x++ {
		for y := int64(0); y < 4; y++ {
			if x%2 == 1 && y%2 == 1 && !(x == 3 && y == 1) {
				continue
			}
			wantNull(t, g, x, y)
		}
	}

	// Fig. 1(f): dimension expansion by 1 in all directions; new border
	// cells take the default 0 and the interior is Fig. 1(c).
	if _, err := db.Query(`ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5]`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`ALTER ARRAY matrix ALTER DIMENSION y SET RANGE [-1:1:5]`); err != nil {
		t.Fatal(err)
	}
	res = db.MustQuery(`SELECT [x], [y], v FROM matrix`)
	g = gridOf(t, res)
	if res.Shape.Cells() != 36 {
		t.Fatalf("expanded array has %d cells, want 36", res.Shape.Cells())
	}
	for x := int64(-1); x < 5; x++ {
		for y := int64(-1); y < 5; y++ {
			interior := x >= 0 && x < 4 && y >= 0 && y < 4
			if !interior {
				wantInt(t, g, x, y, 0)
				continue
			}
			switch {
			case x > y:
				wantNull(t, g, x, y)
			case x < y:
				wantInt(t, g, x, y, x-y)
			default:
				wantInt(t, g, x, y, x*y)
			}
		}
	}
}

// TestFigure1TableView checks the array→table coercion of §2: selecting
// attributes yields a plain table with one row per cell.
func TestFigure1TableView(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE ARRAY matrix (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0)`)
	res := db.MustQuery(`SELECT x, y, v FROM matrix`)
	if res.IsArray {
		t.Fatal("plain attribute selection must yield a table")
	}
	if res.NumRows() != 16 || res.NumCols() != 3 {
		t.Fatalf("got %dx%d", res.NumRows(), res.NumCols())
	}
	// Row-major layout per Fig. 3: first four rows are x=0, y=0..3.
	for i := 0; i < 4; i++ {
		if res.Value(i, 0).Int64() != 0 || res.Value(i, 1).Int64() != int64(i) {
			t.Errorf("row %d: (%v,%v)", i, res.Value(i, 0), res.Value(i, 1))
		}
	}
}

// TestTableToArrayCoercion checks the mtable example of §2: coercing a
// table to an array with [x], [y] dimension qualifiers.
func TestTableToArrayCoercion(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE mtable (x INT, y INT, v INT)`)
	db.MustQuery(`INSERT INTO mtable VALUES (0,0,10), (1,0,11), (0,1,12), (2,2,13)`)
	res := db.MustQuery(`SELECT [x], [y], v FROM mtable`)
	if !res.IsArray {
		t.Fatal("expected array result")
	}
	// Bounds derived from the data: x in [0,3), y in [0,3).
	if res.Shape.Cells() != 9 {
		t.Fatalf("inferred %v (%d cells), want 3x3", res.Shape, res.Shape.Cells())
	}
	g := gridOf(t, res)
	wantInt(t, g, 0, 0, 10)
	wantInt(t, g, 1, 0, 11)
	wantInt(t, g, 0, 1, 12)
	wantInt(t, g, 2, 2, 13)
	wantNull(t, g, 1, 1) // missing rows stay holes
	wantNull(t, g, 2, 0)
}

package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
)

// Session is one client's handle on the database: it carries transaction
// ownership (BEGIN binds the engine's single explicit transaction to the
// session that issued it) and pins prepared statements. Sessions are cheap
// and safe for concurrent use; the sciqld server gives every connection
// its own. The DB-level Exec/Query run on a default session, so embedded
// single-connection use never needs to create one.
type Session struct {
	db *DB

	prepMu sync.Mutex
	prep   map[string]*Prepared
}

// NewSession returns a fresh session over the database.
func (db *DB) NewSession() *Session {
	return &Session{db: db}
}

// DB returns the underlying database.
func (s *Session) DB() *DB { return s.db }

// Exec parses and executes a semicolon-separated batch, returning one
// result per statement. Reads run lock-free against the published
// snapshot; writes serialise on the engine's writer lock.
func (s *Session) Exec(query string) ([]*Result, error) {
	return s.ExecContext(context.Background(), query)
}

// ExecContext is Exec under a context: cancelling ctx (or its deadline
// expiring) stops the batch between statements, between MAL
// instructions, and at morsel granularity inside large kernels. The
// statement running at cancellation time returns ctx.Err(); its
// already-committed predecessors in the batch stay committed.
func (s *Session) ExecContext(ctx context.Context, query string) ([]*Result, error) {
	stmts, err := s.db.parse(query)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for _, st := range stmts {
		r, err := s.db.execStmtCtx(ctx, s, st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Query executes exactly one statement and returns its result.
func (s *Session) Query(query string) (*Result, error) {
	return s.QueryContext(context.Background(), query)
}

// QueryContext is Query under a context (see ExecContext for the
// cancellation semantics).
func (s *Session) QueryContext(ctx context.Context, query string) (*Result, error) {
	key := cacheKey(query)
	if stmts, ok := s.db.pcache.get(key); ok && len(stmts) == 1 {
		return s.db.execStmtCtx(ctx, s, stmts[0])
	}
	stmt, err := parser.ParseOne(query)
	if err != nil {
		return nil, err
	}
	s.db.pcache.put(key, []ast.Statement{stmt})
	return s.db.execStmtCtx(ctx, s, stmt)
}

// ExecStmt executes one parsed statement on this session.
func (s *Session) ExecStmt(stmt ast.Statement) (*Result, error) {
	return s.db.execStmt(s, stmt)
}

// ExecStmtContext executes one parsed statement on this session under a
// context.
func (s *Session) ExecStmtContext(ctx context.Context, stmt ast.Statement) (*Result, error) {
	return s.db.execStmtCtx(ctx, s, stmt)
}

// InTransaction reports whether this session holds the open transaction.
func (s *Session) InTransaction() bool {
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	return s.db.txn != nil && s.db.txnOwner == s
}

// Close releases the session, rolling back its open transaction if any.
func (s *Session) Close() error {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if s.db.txn != nil && s.db.txnOwner == s {
		s.db.txn.rollback(s.db)
		s.db.txn = nil
		s.db.txnOwner = nil
		s.db.discardWALPending()
		s.db.publishLocked()
	}
	s.prepMu.Lock()
	s.prep = nil
	s.prepMu.Unlock()
	return nil
}

// Prepared is a parsed statement batch pinned by a session: unlike entries
// of the DB's bounded LRU parse cache it cannot be evicted, so hot
// server-side statements keep a stable handle.
type Prepared struct {
	s     *Session
	text  string
	stmts []ast.Statement
}

// Prepare parses the batch once and pins it under the given name
// (replacing any previous statement of that name).
func (s *Session) Prepare(name, query string) (*Prepared, error) {
	stmts, err := s.db.parse(query)
	if err != nil {
		return nil, err
	}
	p := &Prepared{s: s, text: query, stmts: stmts}
	s.prepMu.Lock()
	if s.prep == nil {
		s.prep = map[string]*Prepared{}
	}
	s.prep[name] = p
	s.prepMu.Unlock()
	return p, nil
}

// Prepared returns the pinned statement of that name, if any.
func (s *Session) Prepared(name string) (*Prepared, bool) {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	p, ok := s.prep[name]
	return p, ok
}

// Text returns the original statement text.
func (p *Prepared) Text() string { return p.text }

// Exec executes the prepared batch on its session.
func (p *Prepared) Exec() ([]*Result, error) {
	if p.s == nil {
		return nil, fmt.Errorf("prepared statement is detached")
	}
	out := make([]*Result, 0, len(p.stmts))
	for _, st := range p.stmts {
		r, err := p.s.db.execStmt(p.s, st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

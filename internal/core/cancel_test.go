package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/mal"
	"repro/internal/par"
)

// bigJoinDB builds an in-memory database with two n-row tables sharing a
// key domain, so a join between them is expensive enough to cancel
// mid-kernel.
func bigJoinDB(tb testing.TB, n int) *DB {
	tb.Helper()
	db := New()
	db.MustQuery(fmt.Sprintf(`CREATE ARRAY seq (i INT DIMENSION[0:1:%d], v INT DEFAULT 0)`, n))
	db.MustQuery(`CREATE TABLE l (a INT)`)
	db.MustQuery(`CREATE TABLE r (a INT)`)
	db.MustQuery(`INSERT INTO l SELECT i % 65536 FROM seq`)
	db.MustQuery(`INSERT INTO r SELECT i % 65536 FROM seq`)
	return db
}

const bigJoinQuery = `SELECT COUNT(*) FROM l JOIN r ON l.a = r.a`

func TestQueryContextPreCancelled(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, `SELECT a FROM t`); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestQueryContextBackgroundUnaffected(t *testing.T) {
	db := New()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (42)`)
	r, err := db.QueryContext(context.Background(), `SELECT a FROM t`)
	if err != nil || r.NumRows() != 1 {
		t.Fatalf("r = %v, err = %v", r, err)
	}
}

// TestCancelMidJoin is the tentpole latency bound: cancelling a running
// 1M-row join must return within one morsel — far under the query's full
// runtime, and absolutely under 50ms even on a loaded CI machine.
func TestCancelMidJoin(t *testing.T) {
	db := bigJoinDB(t, 1_000_000)

	// Baseline: the uncancelled join takes long enough that an instant
	// return below proves cancellation (not completion).
	t0 := time.Now()
	if _, err := db.Query(bigJoinQuery); err != nil {
		t.Fatalf("baseline join: %v", err)
	}
	full := time.Since(t0)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		_, err := db.QueryContext(ctx, bigJoinQuery)
		errc <- err
	}()
	<-started
	time.Sleep(full / 4) // let the join get well into its kernels
	tc := time.Now()
	cancel()
	select {
	case err := <-errc:
		lat := time.Since(tc)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if lat > 50*time.Millisecond {
			t.Fatalf("cancellation latency %v, want < 50ms (full join: %v)", lat, full)
		}
		t.Logf("cancel latency %v (full join %v)", lat, full)
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query never returned")
	}
}

func TestDeadlineExceededMidQuery(t *testing.T) {
	db := bigJoinDB(t, 300_000)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := db.QueryContext(ctx, bigJoinQuery)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelBetweenStatements: a batch stops at the statement boundary
// once its context dies; completed statements stay applied.
func TestCancelBetweenStatements(t *testing.T) {
	db := New()
	ctx, cancel := context.WithCancel(context.Background())
	prev := mal.SetTestHook(func(in *mal.Instr) {
		// First interpreted instruction of the second statement pulls the
		// plug; the already-committed CREATE/INSERT must survive.
		cancel()
	})
	defer mal.SetTestHook(prev)

	rs, err := db.session.ExecContext(ctx,
		`CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t; SELECT a FROM t`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rs) >= 4 {
		t.Fatalf("cancelled batch returned %d results, want fewer than 4", len(rs))
	}
	mal.SetTestHook(nil)
	r := db.MustQuery(`SELECT a FROM t`)
	if r.NumRows() != 1 {
		t.Fatalf("committed prefix lost: %d rows", r.NumRows())
	}
}

// TestCancelDoesNotPoison: after a cancelled query the session and the
// engine keep working, and no Job leaks into later queries.
func TestCancelDoesNotPoison(t *testing.T) {
	db := bigJoinDB(t, 200_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, bigJoinQuery); err == nil {
		t.Fatal("expected error from cancelled query")
	}
	if par.CurrentJob() != nil {
		t.Fatal("cancelled query leaked a par.Job on the calling goroutine")
	}
	r, err := db.Query(`SELECT COUNT(*) FROM l`)
	if err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
	if got := strings.TrimSpace(r.String()); !strings.Contains(got, "200000") {
		t.Fatalf("follow-up result = %q, want 200000 rows counted", got)
	}
}

// TestCancelLatencyAt10M is the paper-grade bound from the issue: at 10M
// rows a mid-join cancel still returns within one morsel (< 50ms). The
// build is heavy, so it is skipped in -short runs.
func TestCancelLatencyAt10M(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-row fixture is slow; run without -short")
	}
	db := bigJoinDB(t, 10_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(ctx, bigJoinQuery)
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond) // well inside the kernels
	tc := time.Now()
	cancel()
	select {
	case err := <-errc:
		lat := time.Since(tc)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if lat > 50*time.Millisecond {
			t.Fatalf("cancellation latency %v at 10M rows, want < 50ms", lat)
		}
		t.Logf("cancel latency %v at 10M rows", lat)
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled query never returned")
	}
}

package core

import (
	"container/list"
	"sync"

	"repro/internal/rel"
	"repro/internal/sql/ast"
)

// parseCacheSize bounds the number of cached statement lists. Repeated
// statements (the dominant pattern in the benchmark scenarios: Game of
// Life steps, image kernels, guarded updates) hit the cache and skip the
// parser entirely.
const parseCacheSize = 256

// parseCache is a bounded LRU from a cache key to parsed statements.
// Parsing is catalog-independent, so entries stay valid across DML; the
// engine still purges on DDL out of caution, since DDL is rare and a stale
// AST bug would be miserable to chase.
//
// The cache key (see cacheKey) is, exhaustively:
//
//   - the raw SQL text, and
//   - the join-order mode (rel.JoinOrdering), so a mode switch between
//     executions of the same text can never replay a plan decided under
//     the other mode if plan state ever attaches to cached entries.
//
// Deliberately NOT part of the key: the kernel thread count
// (par.Threads) and the slab-encoding toggle (bat.EncodingsEnabled) —
// both are pure execution-time switches consulted after binding, and only
// parsed ASTs are cached, so entries stay correct across changes to
// either. If you add a process-wide flag that changes what compilation
// produces from a cached AST before execution, add it to cacheKey.
//
// Cached ASTs are shared across executions: the binder and compiler treat
// the AST as read-only (they build fresh rel/MAL nodes), which is what
// makes reuse safe.
type parseCache struct {
	mu    sync.Mutex
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type parseEntry struct {
	key   string
	stmts []ast.Statement
}

func newParseCache() *parseCache {
	return &parseCache{
		items: make(map[string]*list.Element, parseCacheSize),
		order: list.New(),
	}
}

// cacheKey builds the cache key for a query text: every component that
// affects what a cached entry means (see the type comment for the
// rationale per component).
func cacheKey(query string) string {
	return rel.JoinOrdering().String() + "\x00" + query
}

// get returns the cached statements for query, marking the entry as
// recently used.
func (c *parseCache) get(query string) ([]ast.Statement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[query]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*parseEntry).stmts, true
}

// put stores the parsed statements, evicting the least recently used entry
// when full.
func (c *parseCache) put(query string, stmts []ast.Statement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[query]; ok {
		el.Value.(*parseEntry).stmts = stmts
		c.order.MoveToFront(el)
		return
	}
	if len(c.items) >= parseCacheSize {
		if lru := c.order.Back(); lru != nil {
			c.order.Remove(lru)
			delete(c.items, lru.Value.(*parseEntry).key)
		}
	}
	c.items[query] = c.order.PushFront(&parseEntry{key: query, stmts: stmts})
}

// purge drops every entry (DDL invalidation).
func (c *parseCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.items)
	c.order.Init()
}

// len returns the number of cached entries (tests).
func (c *parseCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

package core

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/types"
)

// BulkSetAttrInts replaces every cell of an array attribute with the given
// data, in row-major cell order. It is the fast ingestion path used by the
// data vault (internal/vault) to load images without going through one
// INSERT per pixel, mirroring MonetDB's bulk-loading interfaces.
func (db *DB) BulkSetAttrInts(array, attr string, data []int64) error {
	req, err := db.bulkSetAttrIntsLocked(array, attr, data)
	if req != nil {
		// Group commit: the batch is on the queue; wait for its fsync
		// outside the writer lock (see execStmtCtx).
		if werr := <-req.done; werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

func (db *DB) bulkSetAttrIntsLocked(array, attr string, data []int64) (*commitReq, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writeBlockedErr(); err != nil {
		return nil, err
	}
	a, ok := db.cat.Array(array)
	if !ok {
		return nil, fmt.Errorf("no such array: %q", array)
	}
	ai, ok := a.AttrIndex(attr)
	if !ok {
		return nil, fmt.Errorf("array %q has no attribute %q", array, attr)
	}
	if len(data) != a.Cells() {
		return nil, fmt.Errorf("array %q has %d cells, got %d values", array, a.Cells(), len(data))
	}
	if k := a.Attrs[ai].Type.Kind; k != types.KindInt {
		return nil, fmt.Errorf("attribute %q is %s, not integer", attr, k)
	}
	db.noteModifyArray(a)
	a.AttrBats[ai] = bat.FromInts(append([]int64(nil), data...))
	if db.durable() {
		db.logRecord(encBulkAttrInts(a.Name, ai, data))
	}
	if db.txn == nil {
		// The shared autocommit boundary: durability first, then
		// publication — and publish even when the flush fails, so readers
		// stay consistent with the applied in-memory state.
		return db.commitBoundaryLocked()
	}
	return nil, nil
}

// ReadAttrInts copies the cell values of an integer array attribute, in
// row-major cell order; holes read as (0, false).
func (db *DB) ReadAttrInts(array, attr string) ([]int64, []bool, error) {
	// Read from the published snapshot — consistent and concurrent with
	// other readers. With an explicit transaction open, read the live
	// catalog instead (read-your-writes: bulk loads inside a transaction
	// are unpublished until COMMIT); the read lock excludes the writer.
	db.mu.RLock()
	defer db.mu.RUnlock()
	cat := db.view.Load()
	if db.txn != nil {
		cat = db.cat
	}
	a, ok := cat.Array(array)
	if !ok {
		return nil, nil, fmt.Errorf("no such array: %q", array)
	}
	ai, ok := a.AttrIndex(attr)
	if !ok {
		return nil, nil, fmt.Errorf("array %q has no attribute %q", array, attr)
	}
	b := a.AttrBats[ai]
	if b.ValueKind() != types.KindInt && b.ValueKind() != types.KindOID {
		return nil, nil, fmt.Errorf("attribute %q is %s, not integer", attr, b.ValueKind())
	}
	vals := make([]int64, b.Len())
	valid := make([]bool, b.Len())
	src := b.DecodedInts()
	for i := 0; i < b.Len(); i++ {
		if !b.IsNull(i) {
			vals[i] = src[i]
			valid[i] = true
		}
	}
	return vals, valid, nil
}

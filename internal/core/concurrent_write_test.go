package core

// Concurrent-writer isolation suite (run under -race): N sessions issuing
// conflicting and non-conflicting autocommit DML. Plain Exec must never
// surface a conflict error — the router retries and falls back to the
// serialized path — while ExecOptimistic surfaces first-committer-wins
// losses as clean ErrWriteConflict errors, and the committed state always
// equals a serial replay of the winners.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/sql/parser"
)

// TestConcurrentWritersNonConflicting: writers on disjoint tables never
// conflict; every statement succeeds and every row survives a reopen.
func TestConcurrentWritersNonConflicting(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const writers, rows = 6, 25
	for w := 0; w < writers; w++ {
		db.MustQuery(fmt.Sprintf("CREATE TABLE t%d (a INT)", w))
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for j := 0; j < rows; j++ {
				if _, err := s.Query(fmt.Sprintf("INSERT INTO t%d VALUES (%d)", w, j)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	for w := 0; w < writers; w++ {
		r := db2.MustQuery(fmt.Sprintf("SELECT COUNT(*) FROM t%d", w))
		if got := r.Cols[0].Ints()[0]; got != rows {
			t.Fatalf("t%d has %d rows after reopen, want %d", w, got, rows)
		}
	}
}

// TestConcurrentWritersSharedTable: inserts into one table race on its
// Mod stamp; the router must absorb every conflict (retry, then
// serialized fallback) so plain sessions see no errors and no lost
// writes.
func TestConcurrentWritersSharedTable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db.MustQuery(`CREATE TABLE t (a INT)`)
	const writers, rows = 8, 20
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for j := 0; j < rows; j++ {
				if _, err := s.Query(fmt.Sprintf("INSERT INTO t VALUES (%d)", w*1000+j)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v (plain Exec must never surface a conflict)", w, err)
		}
	}
	wantSum := 0
	for w := 0; w < writers; w++ {
		for j := 0; j < rows; j++ {
			wantSum += w*1000 + j
		}
	}
	check := func(db *DB, when string) {
		t.Helper()
		r := db.MustQuery(`SELECT COUNT(*), SUM(a) FROM t`)
		if got := r.Cols[0].Ints()[0]; got != writers*rows {
			t.Fatalf("%s: %d rows, want %d (lost or duplicated writes)", when, got, writers*rows)
		}
		if got := r.Cols[1].Ints()[0]; got != int64(wantSum) {
			t.Fatalf("%s: SUM(a) = %d, want %d", when, got, wantSum)
		}
	}
	check(db, "live")
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	check(db2, "after reopen")
}

// TestConcurrentUpdatersFirstCommitterWins: racing ExecOptimistic
// updates on one row. Every loser must get a clean ErrWriteConflict and
// the final state must equal a serial replay of exactly the winners.
func TestConcurrentUpdatersFirstCommitterWins(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	db.MustQuery(`CREATE TABLE t (v INT)`)
	db.MustQuery(`INSERT INTO t VALUES (0)`)

	const updaters = 8
	var wg sync.WaitGroup
	errs := make([]error, updaters)
	for i := 0; i < updaters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			_, errs[i] = s.ExecOptimistic(`UPDATE t SET v = v + 1`)
		}(i)
	}
	wg.Wait()

	wins := 0
	for i, err := range errs {
		switch {
		case err == nil:
			wins++
		case errors.Is(err, ErrWriteConflict):
			// A clean first-committer-wins loss; the caller owns the retry.
		default:
			t.Fatalf("updater %d: %v, want nil or ErrWriteConflict", i, err)
		}
	}
	if wins == 0 {
		t.Fatal("no updater won; at least one optimistic commit must succeed")
	}
	r := db.MustQuery(`SELECT v FROM t`)
	if got := r.Cols[0].Ints()[0]; got != int64(wins) {
		t.Fatalf("v = %d after %d winning increments: committed state must equal a serial replay of the winners", got, wins)
	}
}

// TestOptimisticStaleSnapshotDropCreate: a plan staged against a table
// that is then dropped and recreated under the same name must conflict —
// the database-wide Mod sequence guarantees the new incarnation never
// reuses the old stamp, so the stale effect cannot land on the wrong
// storage.
func TestOptimisticStaleSnapshotDropCreate(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1)`)

	stmt, err := parser.ParseOne(`UPDATE t SET a = 99`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	st, err := prepareOptimistic(db.view.Load(), stmt)
	if err != nil || st == nil {
		t.Fatalf("prepare = (%v, %v), want a staged write", st, err)
	}

	// The target is replaced wholesale between prepare and apply.
	db.MustQuery(`DROP TABLE t`)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (2)`)

	if _, _, err := db.applyStaged(st); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("apply against a recreated table = %v, want ErrWriteConflict", err)
	}
	r := db.MustQuery(`SELECT a FROM t`)
	if got := r.Cols[0].Ints()[0]; got != 2 {
		t.Fatalf("a = %d, want 2: the stale plan must not touch the new incarnation", got)
	}
}

// TestExecOptimisticIneligible: statement shapes outside the optimistic
// path are rejected with a clear error rather than silently serialized.
func TestExecOptimisticIneligible(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	db.MustQuery(`CREATE TABLE src (a INT)`)
	db.MustQuery(`CREATE TABLE dst (a INT)`)
	s := db.NewSession()
	defer s.Close()
	for _, q := range []string{
		`INSERT INTO dst SELECT a FROM src`, // plans against a second object
		`SELECT * FROM src`,                 // not DML at all
	} {
		if _, err := s.ExecOptimistic(q); err == nil ||
			!strings.Contains(err.Error(), "not eligible") {
			t.Fatalf("ExecOptimistic(%q) = %v, want a not-eligible error", q, err)
		}
	}
}

// TestConcurrentWriteBlockedByOpenTxn: while one session holds the
// explicit transaction, other sessions' writes are refused with a clean
// error (optimistic path included) and succeed after COMMIT.
func TestConcurrentWriteBlockedByOpenTxn(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	db.MustQuery(`CREATE TABLE t (a INT)`)
	owner := db.NewSession()
	defer owner.Close()
	other := db.NewSession()
	defer other.Close()

	if _, err := owner.Exec(`BEGIN; INSERT INTO t VALUES (1)`); err != nil {
		t.Fatalf("BEGIN: %v", err)
	}
	if _, err := other.Query(`INSERT INTO t VALUES (2)`); err == nil ||
		!strings.Contains(err.Error(), "another session holds an open transaction") {
		t.Fatalf("write during foreign txn = %v, want a writes-blocked error", err)
	}
	if _, err := other.ExecOptimistic(`INSERT INTO t VALUES (2)`); err == nil ||
		!strings.Contains(err.Error(), "open transaction") {
		t.Fatalf("ExecOptimistic during foreign txn = %v, want an open-transaction error", err)
	}
	if _, err := owner.Exec(`COMMIT`); err != nil {
		t.Fatalf("COMMIT: %v", err)
	}
	if _, err := other.Query(`INSERT INTO t VALUES (2)`); err != nil {
		t.Fatalf("write after COMMIT: %v", err)
	}
	r := db.MustQuery(`SELECT COUNT(*) FROM t`)
	if got := r.Cols[0].Ints()[0]; got != 2 {
		t.Fatalf("row count = %d, want 2", got)
	}
}

package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/shape"
	"repro/internal/types"
)

// On-disk layout of a database directory:
//
//	catalog.json      — schema manifest (tables, arrays, shapes, defaults)
//	bats/<obj>.<col>.bat — one binary BAT file per column (internal/bat format)
//
// Persistence is snapshot-based: Save writes everything, Open reads it
// back. Durability within a session comes from explicit Save/Close.

type manifest struct {
	Version int             `json:"version"`
	Tables  []manifestTable `json:"tables"`
	Arrays  []manifestArray `json:"arrays"`
}

type manifestCol struct {
	Name    string  `json:"name"`
	Type    string  `json:"type"`
	Default *string `json:"default,omitempty"`
	DefNull bool    `json:"default_null,omitempty"`
}

type manifestTable struct {
	Name    string        `json:"name"`
	Columns []manifestCol `json:"columns"`
	Deleted []int         `json:"deleted,omitempty"`
}

type manifestDim struct {
	Name      string `json:"name"`
	Start     int64  `json:"start"`
	Step      int64  `json:"step"`
	Stop      int64  `json:"stop"`
	Unbounded bool   `json:"unbounded,omitempty"`
}

type manifestArray struct {
	Name  string        `json:"name"`
	Dims  []manifestDim `json:"dims"`
	Attrs []manifestCol `json:"attrs"`
}

func colToManifest(c catalog.Column) manifestCol {
	mc := manifestCol{Name: c.Name, Type: c.Type.Name}
	if c.HasDef {
		if c.Default.IsNull() {
			mc.DefNull = true
		} else {
			s := c.Default.String()
			mc.Default = &s
		}
	}
	return mc
}

func colFromManifest(mc manifestCol) (catalog.Column, error) {
	st, ok := types.SQLTypeByName(mc.Type)
	if !ok {
		return catalog.Column{}, fmt.Errorf("unknown type %q in catalog", mc.Type)
	}
	col := catalog.Column{Name: mc.Name, Type: st}
	if mc.DefNull {
		col.HasDef = true
		col.Default = types.Null(st.Kind)
	} else if mc.Default != nil {
		v, err := types.Str(*mc.Default).Cast(st.Kind)
		if err != nil {
			return catalog.Column{}, fmt.Errorf("column %q default: %v", mc.Name, err)
		}
		col.HasDef = true
		col.Default = v
	}
	return col, nil
}

// Save writes the database snapshot to its directory.
func (db *DB) Save() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.save()
}

func (db *DB) save() error {
	if db.dir == "" {
		return fmt.Errorf("database is in-memory; open it with a directory to persist")
	}
	batDir := filepath.Join(db.dir, "bats")
	if err := os.MkdirAll(batDir, 0o755); err != nil {
		return err
	}
	m := manifest{Version: 1}
	for _, name := range db.cat.TableNames() {
		t, _ := db.cat.Table(name)
		mt := manifestTable{Name: t.Name}
		for i, c := range t.Columns {
			mt.Columns = append(mt.Columns, colToManifest(c))
			path := filepath.Join(batDir, fmt.Sprintf("%s.%s.bat", t.Name, c.Name))
			if err := t.Bats[i].Save(path); err != nil {
				return err
			}
		}
		if t.Deleted != nil {
			for i := 0; i < t.PhysRows(); i++ {
				if t.Deleted.Get(i) {
					mt.Deleted = append(mt.Deleted, i)
				}
			}
		}
		m.Tables = append(m.Tables, mt)
	}
	for _, name := range db.cat.ArrayNames() {
		a, _ := db.cat.Array(name)
		ma := manifestArray{Name: a.Name}
		for k, d := range a.Shape {
			ma.Dims = append(ma.Dims, manifestDim{
				Name: d.Name, Start: d.Start, Step: d.Step, Stop: d.Stop,
				Unbounded: a.Unbounded[k],
			})
		}
		for i, c := range a.Attrs {
			ma.Attrs = append(ma.Attrs, colToManifest(c))
			path := filepath.Join(batDir, fmt.Sprintf("%s.%s.bat", a.Name, c.Name))
			if err := a.AttrBats[i].Save(path); err != nil {
				return err
			}
		}
		m.Arrays = append(m.Arrays, ma)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(db.dir, "catalog.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(db.dir, "catalog.json"))
}

func (db *DB) load() error {
	path := filepath.Join(db.dir, "catalog.json")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return os.MkdirAll(db.dir, 0o755) // fresh database
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("corrupt catalog: %v", err)
	}
	batDir := filepath.Join(db.dir, "bats")
	for _, mt := range m.Tables {
		t := &catalog.Table{Name: mt.Name}
		for _, mc := range mt.Columns {
			col, err := colFromManifest(mc)
			if err != nil {
				return err
			}
			t.Columns = append(t.Columns, col)
			b, err := bat.Load(filepath.Join(batDir, fmt.Sprintf("%s.%s.bat", mt.Name, mc.Name)))
			if err != nil {
				return fmt.Errorf("table %s column %s: %v", mt.Name, mc.Name, err)
			}
			t.Bats = append(t.Bats, b)
		}
		if len(mt.Deleted) > 0 {
			t.Deleted = bat.NewBitmap(t.PhysRows())
			for _, i := range mt.Deleted {
				t.Deleted.Set(i, true)
			}
		}
		if err := db.cat.AddTable(t); err != nil {
			return err
		}
	}
	for _, ma := range m.Arrays {
		a := &catalog.Array{Name: ma.Name}
		for _, md := range ma.Dims {
			a.Shape = append(a.Shape, shape.Dim{Name: md.Name, Start: md.Start, Step: md.Step, Stop: md.Stop})
			a.Unbounded = append(a.Unbounded, md.Unbounded)
		}
		for _, mc := range ma.Attrs {
			col, err := colFromManifest(mc)
			if err != nil {
				return err
			}
			a.Attrs = append(a.Attrs, col)
			b, err := bat.Load(filepath.Join(batDir, fmt.Sprintf("%s.%s.bat", ma.Name, mc.Name)))
			if err != nil {
				return fmt.Errorf("array %s attribute %s: %v", ma.Name, mc.Name, err)
			}
			a.AttrBats = append(a.AttrBats, b)
		}
		if err := a.RebuildDims(); err != nil {
			return err
		}
		if err := db.cat.AddArray(a); err != nil {
			return err
		}
	}
	return nil
}

package core

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/shape"
	"repro/internal/types"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// On-disk layout of a database directory:
//
//	catalog.json — checkpoint manifest: schema (tables, arrays, shapes,
//	               defaults), per-object segment versions, deletion masks
//	               and the WAL generation the checkpoint pairs with
//	bats/<obj>.<col>.<ver>.bat — one binary BAT segment per column, at the
//	               checkpoint generation that last wrote it
//	wal.log      — write-ahead log of committed effects since the last
//	               checkpoint (internal/wal framing)
//
// Durability is WAL-first: every committed write appends records and
// fsyncs, so COMMIT costs O(delta). A checkpoint folds the log into the
// segment store — it writes only the BATs of objects dirtied since the
// last checkpoint (temp-file + rename + fsync), publishes a manifest at
// the next generation, then starts a fresh log of that generation. A
// crash at any point leaves either the old manifest + old log (replayed
// on open) or the new manifest + a stale log the generation check
// discards: never a torn store.

type manifest struct {
	Version int `json:"version"`
	// WALGen pairs the manifest with its log: wal.log is replayed on open
	// only when its header carries the same generation.
	WALGen uint64          `json:"wal_gen,omitempty"`
	Tables []manifestTable `json:"tables"`
	Arrays []manifestArray `json:"arrays"`
}

type manifestCol struct {
	Name    string  `json:"name"`
	Type    string  `json:"type"`
	Default *string `json:"default,omitempty"`
	DefNull bool    `json:"default_null,omitempty"`
	// Encodings describes the per-slab physical encoding of the column's
	// segment at this checkpoint ("plain", "rle", "dict", "for",
	// "delta"); absent for all-plain segments. Descriptive only — the
	// segment file carries the authoritative layout — but it lets
	// operators and tooling see the compression mix without opening
	// segments, and EncodedBytes/LogicalBytes summarise the win.
	Encodings    []string `json:"encodings,omitempty"`
	EncodedBytes int64    `json:"encoded_bytes,omitempty"`
	LogicalBytes int64    `json:"logical_bytes,omitempty"`
	// Stats carries the column's property claims across restarts: the
	// order flags double the segment-file flags (the manifest is the
	// authority), the bounds exist only here. WAL replay then maintains
	// them incrementally through the ordinary DML paths, so a recovered
	// database resumes with sound statistics without rescanning.
	Stats *manifestStats `json:"stats,omitempty"`
}

type manifestStats struct {
	Sorted     bool    `json:"sorted,omitempty"`
	SortedDesc bool    `json:"sorted_desc,omitempty"`
	Key        bool    `json:"key,omitempty"`
	Min        *string `json:"min,omitempty"`
	Max        *string `json:"max,omitempty"`
}

// statsToManifest snapshots a column's property claims for the manifest
// (nil when nothing is claimed, keeping the JSON clean).
func statsToManifest(b *bat.BAT) *manifestStats {
	lo, hi, okMM := b.MinMax()
	if !b.Sorted && !b.SortedDesc && !b.Key && !okMM {
		return nil
	}
	ms := &manifestStats{Sorted: b.Sorted, SortedDesc: b.SortedDesc, Key: b.Key}
	if okMM {
		los, his := lo.String(), hi.String()
		ms.Min, ms.Max = &los, &his
	}
	return ms
}

// applyManifestStats installs manifest property claims on a loaded column.
func applyManifestStats(b *bat.BAT, ms *manifestStats, kind types.Kind) {
	if ms == nil {
		return
	}
	b.Sorted, b.SortedDesc, b.Key = ms.Sorted, ms.SortedDesc, ms.Key
	if ms.Min != nil && ms.Max != nil {
		lo, err1 := types.Str(*ms.Min).Cast(kind)
		hi, err2 := types.Str(*ms.Max).Cast(kind)
		if err1 == nil && err2 == nil {
			b.SetMinMax(lo, hi)
		}
	}
}

type manifestTable struct {
	Name    string        `json:"name"`
	Columns []manifestCol `json:"columns"`
	Deleted []int         `json:"deleted,omitempty"`
	// Ver is the checkpoint generation of this table's segment files;
	// 0 names the legacy unversioned <obj>.<col>.bat layout.
	Ver uint64 `json:"ver,omitempty"`
}

type manifestDim struct {
	Name      string `json:"name"`
	Start     int64  `json:"start"`
	Step      int64  `json:"step"`
	Stop      int64  `json:"stop"`
	Unbounded bool   `json:"unbounded,omitempty"`
}

type manifestArray struct {
	Name  string        `json:"name"`
	Dims  []manifestDim `json:"dims"`
	Attrs []manifestCol `json:"attrs"`
	Ver   uint64        `json:"ver,omitempty"`
}

// encToManifest records a column's slab-encoding descriptors on its
// manifest entry (no-op for plain columns, keeping the JSON clean).
func encToManifest(mc *manifestCol, b *bat.BAT) {
	if !b.Encoded() {
		return
	}
	encs := b.SlabEncodings()
	mc.Encodings = make([]string, len(encs))
	for i, e := range encs {
		mc.Encodings[i] = e.String()
	}
	mc.EncodedBytes = b.EncodedBytes()
	mc.LogicalBytes = b.LogicalBytes()
}

func colToManifest(c catalog.Column) manifestCol {
	mc := manifestCol{Name: c.Name, Type: c.Type.Name}
	if c.HasDef {
		if c.Default.IsNull() {
			mc.DefNull = true
		} else {
			s := c.Default.String()
			mc.Default = &s
		}
	}
	return mc
}

func colFromManifest(mc manifestCol) (catalog.Column, error) {
	st, ok := types.SQLTypeByName(mc.Type)
	if !ok {
		return catalog.Column{}, fmt.Errorf("unknown type %q in catalog", mc.Type)
	}
	col := catalog.Column{Name: mc.Name, Type: st}
	if mc.DefNull {
		col.HasDef = true
		col.Default = types.Null(st.Kind)
	} else if mc.Default != nil {
		v, err := types.Str(*mc.Default).Cast(st.Kind)
		if err != nil {
			return catalog.Column{}, fmt.Errorf("column %q default: %v", mc.Name, err)
		}
		col.HasDef = true
		col.Default = v
	}
	return col, nil
}

// segPath names the segment file of one column at a checkpoint version
// (version 0 is the legacy pre-WAL layout without a version infix).
func segPath(batDir, obj, col string, ver uint64) string {
	if ver == 0 {
		return filepath.Join(batDir, fmt.Sprintf("%s.%s.bat", obj, col))
	}
	return filepath.Join(batDir, fmt.Sprintf("%s.%s.%d.bat", obj, col, ver))
}

// Save forces a checkpoint: dirty objects are folded into segment files
// and the WAL is reset. The on-disk state is always complete afterwards
// (clean objects are covered by their existing segments). With group
// commit active the checkpoint runs on the commit loop — as a barrier
// behind every queued commit, so the fold can never strand an applied
// batch on the wrong side of a generation reset — and Save blocks until
// it completes.
func (db *DB) Save() error {
	db.mu.Lock()
	if db.commitQ == nil {
		defer db.mu.Unlock()
		return db.checkpointLocked()
	}
	req := &commitReq{ckpt: true, done: make(chan error, 1)}
	err := db.commitQ.enqueue(req)
	db.mu.Unlock()
	if err != nil {
		return err
	}
	return <-req.done
}

// WALSize returns the current write-ahead log size in bytes (0 for
// in-memory databases): header plus committed records since the last
// checkpoint.
func (db *DB) WALSize() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.Size()
}

// CheckpointBytes returns the bytes of BAT segment data written by
// checkpoints so far — the measure BenchmarkCommitSmallWrite compares
// against WAL append bytes.
func (db *DB) CheckpointBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ckptWritten
}

// maybeCheckpointLocked folds the log into the segment store once it
// crosses the configured threshold. Must be called under the writer lock.
func (db *DB) maybeCheckpointLocked() error {
	if db.readOnly != "" || db.replica {
		return nil // never write the store in read-only/replica mode
	}
	if db.wal == nil || db.ckptBytes <= 0 || db.wal.Size() <= db.ckptBytes {
		return nil
	}
	return db.checkpointLocked()
}

// checkpointLocked writes the BAT segments of every object dirtied since
// the last checkpoint at the next generation, publishes the manifest,
// and resets the WAL to that generation. Must be called under the writer
// lock.
func (db *DB) checkpointLocked() error {
	if db.dir == "" {
		return fmt.Errorf("database is in-memory; open it with a directory to persist")
	}
	if db.replica {
		// A checkpoint would reset the log to a new local generation,
		// destroying the byte-identity with the primary's log that the
		// replica's resume position depends on.
		return fmt.Errorf("replica: checkpoints are driven by the primary")
	}
	if db.readOnly != "" {
		return fmt.Errorf("read-only (%s): checkpoint refused", db.readOnly)
	}
	if db.txn != nil {
		// The live catalog holds uncommitted effects whose WAL records are
		// still pending; folding it into segments would double-apply them
		// on COMMIT + crash (and persist them on ROLLBACK).
		return fmt.Errorf("cannot checkpoint while a transaction is open")
	}
	// Past the guard clauses, every failure is a durability-affecting I/O
	// error: latch read-only degraded mode so writes are refused instead
	// of diverging further from the disk. A later successful checkpoint
	// (Save, Close) or a reopen clears it.
	if err := db.checkpointIOLocked(); err != nil {
		db.degradeLocked(fmt.Errorf("checkpoint: %v", err))
		return err
	}
	return nil
}

// checkpointIOLocked is the I/O body of checkpointLocked.
func (db *DB) checkpointIOLocked() error {
	batDir := filepath.Join(db.dir, "bats")
	if err := db.fs.MkdirAll(batDir, 0o755); err != nil {
		return err
	}
	newGen := db.walGen + 1

	// Write the segments of data-dirty objects first: until the manifest
	// rename below, nothing references them. Meta-dirty objects (deletion
	// mask changes) are covered by the manifest alone.
	// Dirty columns are re-encoded before the fold: EncodeAuto picks a
	// per-slab encoding (RLE/dict/FOR/delta) where it at least halves the
	// slab, and the encoded BAT replaces the in-memory column too — reads
	// serve the compressed form, mutations decode transparently, and the
	// next checkpoint re-evaluates. The encoded column round-trips the
	// plain tail bit-exactly, so this never changes query results.
	for name, dataDirty := range db.ckptDirty {
		if !dataDirty {
			continue
		}
		if t, ok := db.cat.Table(name); ok {
			for i, c := range t.Columns {
				t.Bats[i] = bat.EncodeAuto(t.Bats[i])
				n, err := t.Bats[i].SaveSizeFS(db.fs, segPath(batDir, t.Name, c.Name, newGen))
				if err != nil {
					return fmt.Errorf("checkpoint table %s: %v", t.Name, err)
				}
				db.ckptWritten += n
			}
			t.Version = newGen
			continue
		}
		if a, ok := db.cat.Array(name); ok {
			for i, c := range a.Attrs {
				a.AttrBats[i] = bat.EncodeAuto(a.AttrBats[i])
				n, err := a.AttrBats[i].SaveSizeFS(db.fs, segPath(batDir, a.Name, c.Name, newGen))
				if err != nil {
					return fmt.Errorf("checkpoint array %s: %v", a.Name, err)
				}
				db.ckptWritten += n
			}
			a.Version = newGen
		}
		// Dropped objects simply vanish from the manifest.
	}
	// Make the segment renames durable before a manifest references them.
	if err := db.fs.SyncDir(batDir); err != nil {
		return err
	}

	m := manifest{Version: 3, WALGen: newGen}
	for _, name := range db.cat.TableNames() {
		t, _ := db.cat.Table(name)
		mt := manifestTable{Name: t.Name, Ver: t.Version}
		for ci, c := range t.Columns {
			mc := colToManifest(c)
			mc.Stats = statsToManifest(t.Bats[ci])
			encToManifest(&mc, t.Bats[ci])
			mt.Columns = append(mt.Columns, mc)
		}
		if t.Deleted != nil {
			for i := 0; i < t.PhysRows(); i++ {
				if t.Deleted.Get(i) {
					mt.Deleted = append(mt.Deleted, i)
				}
			}
		}
		m.Tables = append(m.Tables, mt)
	}
	for _, name := range db.cat.ArrayNames() {
		a, _ := db.cat.Array(name)
		ma := manifestArray{Name: a.Name, Ver: a.Version}
		for k, d := range a.Shape {
			ma.Dims = append(ma.Dims, manifestDim{
				Name: d.Name, Start: d.Start, Step: d.Step, Stop: d.Stop,
				Unbounded: a.Unbounded[k],
			})
		}
		for ci, c := range a.Attrs {
			mc := colToManifest(c)
			mc.Stats = statsToManifest(a.AttrBats[ci])
			encToManifest(&mc, a.AttrBats[ci])
			ma.Attrs = append(ma.Attrs, mc)
		}
		m.Arrays = append(m.Arrays, ma)
	}
	if err := writeManifest(db.fs, db.dir, m); err != nil {
		return err
	}

	// The manifest now covers everything the log held: start generation
	// newGen with an empty log. A crash before this point leaves the old
	// manifest + old log (still replayable); after the manifest rename the
	// old log's generation no longer matches and is discarded on open.
	if db.wal != nil {
		db.syncsRetired += db.wal.Syncs()
		_ = db.wal.Close()
	}
	l, err := wal.CreateFS(db.fs, filepath.Join(db.dir, "wal.log"), newGen)
	if err != nil {
		// The manifest is already durable but there is no log to append
		// to: latch degraded mode (reads stay up, a later Save can retry)
		// instead of silently accepting non-durable writes.
		db.wal = nil
		return fmt.Errorf("resetting wal: %v", err)
	}
	db.wal = l
	db.walGen = newGen
	clear(db.ckptDirty)
	// A successful checkpoint folds the full in-memory state into the
	// store, re-converging disk with memory: any earlier durability
	// failure is healed and writes may resume.
	db.degraded = nil
	db.gcSegments(batDir, m)
	return nil
}

// writeManifest atomically replaces catalog.json (temp file + fsync +
// rename + directory fsync).
func writeManifest(fsys vfs.FS, dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "catalog.json.tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, "catalog.json")); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// gcSegments removes segment files the new manifest no longer references
// (old versions, dropped objects, stale temp files). Best effort: a
// leftover file is wasted space, not corruption.
func (db *DB) gcSegments(batDir string, m manifest) {
	keep := map[string]struct{}{}
	for _, mt := range m.Tables {
		for _, c := range mt.Columns {
			keep[filepath.Base(segPath(batDir, mt.Name, c.Name, mt.Ver))] = struct{}{}
		}
	}
	for _, ma := range m.Arrays {
		for _, c := range ma.Attrs {
			keep[filepath.Base(segPath(batDir, ma.Name, c.Name, ma.Ver))] = struct{}{}
		}
	}
	entries, err := db.fs.ReadDir(batDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := keep[e.Name()]; !ok {
			_ = db.fs.Remove(filepath.Join(batDir, e.Name()))
		}
	}
}

// load reads the checkpoint manifest and its segment files into the live
// catalog and records the WAL generation to pair with. The WAL itself is
// replayed afterwards by recoverWAL.
func (db *DB) load() error {
	path := filepath.Join(db.dir, "catalog.json")
	data, err := db.fs.ReadFile(path)
	if os.IsNotExist(err) {
		return db.fs.MkdirAll(db.dir, 0o755) // fresh database
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("corrupt catalog: %v", err)
	}
	// Version 2 added segment versioning, version 3 per-column encoding
	// descriptors; both load older manifests unchanged (a v2 manifest
	// simply describes all-plain segments).
	if m.Version < 1 || m.Version > 3 {
		return fmt.Errorf("unsupported catalog version %d", m.Version)
	}
	db.walGen = m.WALGen
	batDir := filepath.Join(db.dir, "bats")
	for _, mt := range m.Tables {
		t := &catalog.Table{Name: mt.Name, Version: mt.Ver}
		for _, mc := range mt.Columns {
			col, err := colFromManifest(mc)
			if err != nil {
				return err
			}
			t.Columns = append(t.Columns, col)
			b, err := bat.LoadFS(db.fs, segPath(batDir, mt.Name, mc.Name, mt.Ver))
			if err != nil {
				return fmt.Errorf("table %s column %s: %v", mt.Name, mc.Name, err)
			}
			applyManifestStats(b, mc.Stats, col.Type.Kind)
			t.Bats = append(t.Bats, b)
		}
		if len(mt.Deleted) > 0 {
			t.Deleted = bat.NewBitmap(t.PhysRows())
			for _, i := range mt.Deleted {
				if i < 0 || i >= t.PhysRows() {
					return fmt.Errorf("table %s: deleted row %d out of range", mt.Name, i)
				}
				t.Deleted.Set(i, true)
			}
		}
		if err := db.cat.AddTable(t); err != nil {
			return err
		}
	}
	for _, ma := range m.Arrays {
		a := &catalog.Array{Name: ma.Name, Version: ma.Ver}
		for _, md := range ma.Dims {
			a.Shape = append(a.Shape, shape.Dim{Name: md.Name, Start: md.Start, Step: md.Step, Stop: md.Stop})
			a.Unbounded = append(a.Unbounded, md.Unbounded)
		}
		for _, mc := range ma.Attrs {
			col, err := colFromManifest(mc)
			if err != nil {
				return err
			}
			a.Attrs = append(a.Attrs, col)
			b, err := bat.LoadFS(db.fs, segPath(batDir, ma.Name, mc.Name, ma.Ver))
			if err != nil {
				return fmt.Errorf("array %s attribute %s: %v", ma.Name, mc.Name, err)
			}
			applyManifestStats(b, mc.Stats, col.Type.Kind)
			a.AttrBats = append(a.AttrBats, b)
		}
		if err := a.RebuildDims(); err != nil {
			return err
		}
		if err := db.cat.AddArray(a); err != nil {
			return err
		}
	}
	return nil
}

// recoverWAL opens the write-ahead log, replaying the tail of committed
// effects the last checkpoint does not cover. A log from a different
// generation is a leftover of an interrupted (but completed-enough)
// checkpoint and is discarded. Torn or checksum-failing trailing records
// are truncated by the log layer; a record that fails to decode or apply
// aborts the open with a recovery error.
func (db *DB) recoverWAL() error {
	path := filepath.Join(db.dir, "wal.log")
	gen, err := wal.HeaderFS(db.fs, path)
	if os.IsNotExist(err) {
		l, cerr := wal.CreateFS(db.fs, path, db.walGen)
		if cerr != nil {
			return cerr
		}
		db.wal = l
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal recovery: %v", err)
	}
	if gen != db.walGen {
		// Pre-checkpoint leftover: its effects are already in the
		// segment store. Replace it with a fresh log of our generation.
		l, cerr := wal.CreateFS(db.fs, path, db.walGen)
		if cerr != nil {
			return cerr
		}
		db.wal = l
		return nil
	}
	l, err := wal.OpenFS(db.fs, path, db.applyWALBatch)
	if err != nil {
		return fmt.Errorf("wal recovery: %v", err)
	}
	if n := l.Truncated(); n > 0 {
		// The discarded bytes were written but never became a committed
		// record — a real (if expected) data-loss window after a crash
		// mid-append. Logged and kept on the open result (WALTruncated)
		// so operators and replicas can see it instead of the old
		// silent truncation.
		log.Printf("sciql: wal recovery truncated %d torn trailing bytes of %s (generation %d, %d records kept)",
			n, path, l.Gen(), l.Records())
	}
	db.wal = l
	return nil
}

// flushWALLocked appends the pending records of the finished statement or
// transaction as one WAL record (single fsync): the batch is the commit
// unit, so a torn write during a multi-statement COMMIT can only lose the
// transaction whole, never replay half of it. Must be called under the
// writer lock.
func (db *DB) flushWALLocked() error {
	if db.wal == nil || len(db.walPending) == 0 {
		db.walPending = db.walPending[:0]
		return nil
	}
	err := db.wal.Append(encodeBatch(db.walPending))
	db.walPending = db.walPending[:0]
	db.commits++
	if err != nil {
		// The applied effects are now missing from the log: memory and
		// disk have diverged. Latch read-only degraded mode so no later
		// record can reference state the log never saw; a successful
		// checkpoint (Save/Close) re-converges and clears it.
		cause := fmt.Errorf("wal append: %v", err)
		db.degradeLocked(cause)
		return cause
	}
	return nil
}

// discardWALPending drops queued records (ROLLBACK, session abort).
func (db *DB) discardWALPending() {
	db.walPending = db.walPending[:0]
}

package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vfs"
)

// queueLen reports how many requests are waiting on the commit queue.
func queueLen(q *commitQueue) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.reqs)
}

// waitQueueLen polls until the commit queue holds at least n requests.
func waitQueueLen(t *testing.T, q *commitQueue, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for queueLen(q) < n {
		if time.Now().After(deadline) {
			t.Fatalf("commit queue reached %d requests, want %d", queueLen(q), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// gateCommitLoop parks the commit loop before its next drain and returns
// the release function. Must be called while the queue is idle.
func gateCommitLoop(db *DB) func() {
	gate := make(chan struct{})
	db.commitQ.setGate(gate)
	return func() {
		db.commitQ.setGate(nil)
		close(gate)
	}
}

// TestGroupCommitAmortizesFsyncs: N writers parked behind the gate
// retire as one group — one fsync for all N commits.
func TestGroupCommitAmortizesFsyncs(t *testing.T) {
	db, _, _ := openFaulted(t, 0)
	defer db.Close()
	db.MustQuery(`CREATE TABLE t (a INT)`)

	release := gateCommitLoop(db)
	commits0, syncs0 := db.CommitStats()
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = db.Query(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
		}(i)
	}
	waitQueueLen(t, db.commitQ, writers)
	release()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	commits1, syncs1 := db.CommitStats()
	if dc := commits1 - commits0; dc != writers {
		t.Fatalf("commits delta = %d, want %d", dc, writers)
	}
	if ds := syncs1 - syncs0; ds != 1 {
		t.Fatalf("syncs delta = %d, want 1: the gated group must share one fsync", ds)
	}
	r := db.MustQuery(`SELECT COUNT(*) FROM t`)
	if got := r.Cols[0].Ints()[0]; got != writers {
		t.Fatalf("row count = %d, want %d", got, writers)
	}
}

// TestGroupCommitLeaderFaultFansOut (the leader's fault is every
// follower's fault): when the group fsync fails, all N waiters must get
// an ErrDegraded-consistent error — none may report success — and a
// reopen replays only the commits acked before the fault.
func TestGroupCommitLeaderFaultFansOut(t *testing.T) {
	for _, tc := range []struct {
		name string
		arm  func(fs *vfs.FailFS)
	}{
		{"fsync", func(fs *vfs.FailFS) {
			fs.FailOn(vfs.OpSync, "wal.log", 1, errors.New("injected group fsync failure"))
		}},
		{"short-write", func(fs *vfs.FailFS) {
			fs.ShortWriteOn("wal.log", 1)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, fs, dir := openFaulted(t, 0)
			db.MustQuery(`CREATE TABLE t (a INT)`)
			db.MustQuery(`INSERT INTO t VALUES (100)`) // acked before the fault

			release := gateCommitLoop(db)
			tc.arm(fs)
			const writers = 6
			var wg sync.WaitGroup
			errs := make([]error, writers)
			for i := 0; i < writers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, errs[i] = db.Query(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
				}(i)
			}
			waitQueueLen(t, db.commitQ, writers)
			release()
			wg.Wait()

			for i, err := range errs {
				if err == nil {
					t.Fatalf("writer %d reported success; the group fsync failed", i)
				}
				if !errors.Is(err, ErrDegraded) {
					t.Fatalf("writer %d: %v, want ErrDegraded", i, err)
				}
				if !strings.Contains(err.Error(), "wal append") {
					t.Fatalf("writer %d error %v must carry the append cause", i, err)
				}
			}
			if db.Degraded() == nil {
				t.Fatal("degraded mode must latch after a group append failure")
			}
			// Later writes are refused by the latch, not half-applied.
			if _, err := db.Query(`INSERT INTO t VALUES (200)`); !errors.Is(err, ErrDegraded) {
				t.Fatalf("write after group fault = %v, want ErrDegraded", err)
			}

			// Crash-reopen (no Close: a final checkpoint would fold the
			// unacked effects): replay is exactly the acked commits.
			db2, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer db2.Close()
			r := db2.MustQuery(`SELECT COUNT(*) FROM t`)
			if got := r.Cols[0].Ints()[0]; got != 1 {
				t.Fatalf("replayed %d rows, want 1 (only the acked insert)", got)
			}
		})
	}
}

// TestGroupCommitStuckAfterFault: commits that were already queued when
// the group append failed must fail too, not land in a log with a hole
// before them.
func TestGroupCommitStuckAfterFault(t *testing.T) {
	db, fs, _ := openFaulted(t, 0)
	db.MustQuery(`CREATE TABLE t (a INT)`)

	release := gateCommitLoop(db)
	fs.FailOn(vfs.OpSync, "wal.log", 1, errors.New("injected"))
	// Two groups' worth of writers pile up behind the gate; shrink the
	// group size so they retire as two appends.
	db.mu.Lock()
	db.commitGroup = 2
	db.mu.Unlock()
	const writers = 4
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = db.Query(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
		}(i)
	}
	waitQueueLen(t, db.commitQ, writers)
	release()
	wg.Wait()
	// The first group of 2 hits the fsync fault; the second group must
	// fail with the same sticky cause even though its own fsync would
	// have succeeded.
	for i, err := range errs {
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("writer %d: %v, want ErrDegraded (sticky group failure)", i, err)
		}
	}
	// A successful Save re-converges and clears the stickiness.
	if err := db.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := db.Query(`INSERT INTO t VALUES (9)`); err != nil {
		t.Fatalf("write after Save: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestGroupCommitSaveBarrier: Save routes through the commit queue as a
// barrier — it folds everything queued before it and resets the log.
func TestGroupCommitSaveBarrier(t *testing.T) {
	db, _, dir := openFaulted(t, 0)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	for i := 0; i < 10; i++ {
		db.MustQuery(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	if err := db.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if got := db.WALSize(); got > 64 {
		t.Fatalf("WAL size after Save = %d, want a fresh (near-empty) log", got)
	}
	db.MustQuery(`INSERT INTO t VALUES (10)`)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	r := db2.MustQuery(`SELECT COUNT(*) FROM t`)
	if got := r.Cols[0].Ints()[0]; got != 11 {
		t.Fatalf("row count after reopen = %d, want 11", got)
	}
}

// TestGroupCommitBackgroundCheckpoint: once the log outgrows the
// threshold the loop checkpoints off the commit path; committers never
// see the fold, and the state survives reopen.
func TestGroupCommitBackgroundCheckpoint(t *testing.T) {
	db, _, dir := openFaulted(t, 512)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	for i := 0; i < 200; i++ {
		db.MustQuery(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	// The background checkpoint runs on the loop after a drain; give it
	// a moment to fold the oversized log.
	deadline := time.Now().Add(5 * time.Second)
	for db.WALSize() > 512 {
		if time.Now().After(deadline) {
			t.Fatalf("WAL never checkpointed below the threshold: %d bytes", db.WALSize())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	r := db2.MustQuery(`SELECT COUNT(*) FROM t`)
	if got := r.Cols[0].Ints()[0]; got != 200 {
		t.Fatalf("row count after reopen = %d, want 200", got)
	}
}

// TestSerializedModeStillWorks: CommitQueue < 0 restores the inline
// one-fsync-per-commit path end to end.
func TestSerializedModeStillWorks(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, OpenOptions{CommitQueue: -1})
	if err != nil {
		t.Fatalf("OpenDB: %v", err)
	}
	if db.commitQ != nil {
		t.Fatal("serialized mode must not start a commit loop")
	}
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t VALUES (1), (2)`)
	commits, syncs := db.CommitStats()
	if commits == 0 || syncs < commits {
		t.Fatalf("serialized commits=%d syncs=%d, want one fsync per commit", commits, syncs)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	r := db2.MustQuery(`SELECT COUNT(*) FROM t`)
	if got := r.Cols[0].Ints()[0]; got != 2 {
		t.Fatalf("row count = %d, want 2", got)
	}
}

package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bat"
)

// Encoded-segment persistence: checkpoints must write slab-encoded
// columns (RLE/dict/FOR/delta) to the segment store and reload them
// byte-faithfully — same slab encodings, same payload sizes, same values —
// and WAL replay, crash truncation and re-encoding must all compose with
// the encoded store.

// buildEncDB populates dir with multi-slab encodable data: an array whose
// attributes RLE- and delta-encode (three 64K slabs each) and a table
// whose int and string columns dictionary-encode.
func buildEncDB(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE ARRAY big (t INT DIMENSION[0:1:150000], v INT DEFAULT 0, w INT DEFAULT 0)`)
	n := 150_000
	runs := make([]int64, n) // long constant runs -> RLE
	asc := make([]int64, n)  // ascending small gaps -> delta
	for i := range runs {
		runs[i] = int64(i / 500)
		asc[i] = int64(i)*3 + int64(i%2)
	}
	if err := db.BulkSetAttrInts("big", "v", runs); err != nil {
		t.Fatal(err)
	}
	if err := db.BulkSetAttrInts("big", "w", asc); err != nil {
		t.Fatal(err)
	}

	db.MustQuery(`CREATE TABLE tags (a INT, s VARCHAR)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO tags VALUES `)
	for i := 0; i < 4096; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'tag-%d')", (i%7)*100, i%3)
	}
	db.MustQuery(sb.String())
	return db
}

// attrBat digs the live BAT of one array attribute out of the catalog.
func attrBat(t *testing.T, db *DB, array, attr string) *bat.BAT {
	t.Helper()
	a, ok := db.Catalog().Array(array)
	if !ok {
		t.Fatalf("array %s missing", array)
	}
	ai, ok := a.AttrIndex(attr)
	if !ok {
		t.Fatalf("attribute %s missing", attr)
	}
	return a.AttrBats[ai]
}

func encNames(b *bat.BAT) []string {
	var out []string
	for _, e := range b.SlabEncodings() {
		out = append(out, e.String())
	}
	return out
}

func TestEncodedCheckpointRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := buildEncDB(t, dir)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}

	// The checkpoint installs the encoded form it persisted.
	type colWant struct {
		encs  []string
		bytes int64
	}
	want := map[string]colWant{}
	for _, c := range []struct {
		name string
		b    *bat.BAT
		enc  string
	}{
		{"big.v", attrBat(t, db, "big", "v"), "rle"},
		{"big.w", attrBat(t, db, "big", "w"), "delta"},
		{"tags.a", tableCol(t, db, "tags", 0), "for"},
		{"tags.s", tableCol(t, db, "tags", 1), "dict"},
	} {
		if !c.b.Encoded() {
			t.Fatalf("%s not encoded after checkpoint", c.name)
		}
		encs := encNames(c.b)
		found := false
		for _, e := range encs {
			if e == c.enc {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s slabs %v, want at least one %q slab", c.name, encs, c.enc)
		}
		if c.b.EncodedBytes()*2 > c.b.LogicalBytes() {
			t.Fatalf("%s encoded %d bytes of %d logical: below the 2x win gate",
				c.name, c.b.EncodedBytes(), c.b.LogicalBytes())
		}
		want[c.name] = colWant{encs: encs, bytes: c.b.EncodedBytes()}
	}
	wantV, _, err := db.ReadAttrInts("big", "v")
	if err != nil {
		t.Fatal(err)
	}
	wantW, _, err := db.ReadAttrInts("big", "w")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reload: identical slab encodings, payload sizes and values.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for name, w := range want {
		var b *bat.BAT
		switch name {
		case "big.v":
			b = attrBat(t, db2, "big", "v")
		case "big.w":
			b = attrBat(t, db2, "big", "w")
		case "tags.a":
			b = tableCol(t, db2, "tags", 0)
		case "tags.s":
			b = tableCol(t, db2, "tags", 1)
		}
		if !b.Encoded() {
			t.Fatalf("%s lost its encoding across reload", name)
		}
		got := encNames(b)
		if fmt.Sprint(got) != fmt.Sprint(w.encs) {
			t.Fatalf("%s slab encodings %v after reload, want %v", name, got, w.encs)
		}
		if b.EncodedBytes() != w.bytes {
			t.Fatalf("%s encoded size %d after reload, want %d (round-trip not byte-faithful)",
				name, b.EncodedBytes(), w.bytes)
		}
	}
	gotV, _, err := db2.ReadAttrInts("big", "v")
	if err != nil {
		t.Fatal(err)
	}
	gotW, _, err := db2.ReadAttrInts("big", "w")
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantV {
		if gotV[i] != wantV[i] || gotW[i] != wantW[i] {
			t.Fatalf("cell %d = (%d,%d) after reload, want (%d,%d)", i, gotV[i], gotW[i], wantV[i], wantW[i])
		}
	}
	r := db2.MustQuery(`SELECT COUNT(*), SUM(a) FROM tags`)
	cnt, _ := r.Value(0, 0).AsInt()
	sum, _ := r.Value(0, 1).AsInt()
	// 4096 rows cycling 0,100,...,600: 585 full cycles (sum 2100 each)
	// plus one leftover 0.
	if cnt != 4096 || sum != 585*2100 {
		t.Fatalf("reloaded tags COUNT=%d SUM=%d, want 4096/%d", cnt, sum, 585*2100)
	}
}

// TestEncodedManifestDescriptors pins the manifest v3 format: the
// checkpoint manifest carries per-column encoding descriptors next to the
// authoritative segment files.
func TestEncodedManifestDescriptors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db := buildEncDB(t, dir)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	raw, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Version int `json:"version"`
		Tables  []struct {
			Name    string `json:"name"`
			Columns []struct {
				Name         string   `json:"name"`
				Encodings    []string `json:"encodings"`
				EncodedBytes int64    `json:"encoded_bytes"`
				LogicalBytes int64    `json:"logical_bytes"`
			} `json:"columns"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Version != 3 {
		t.Fatalf("manifest version %d, want 3", m.Version)
	}
	found := false
	for _, tb := range m.Tables {
		if tb.Name != "tags" {
			continue
		}
		for _, c := range tb.Columns {
			if c.Name != "s" {
				continue
			}
			found = true
			if len(c.Encodings) == 0 || c.Encodings[0] != "dict" {
				t.Fatalf("tags.s manifest encodings %v, want [dict]", c.Encodings)
			}
			if c.EncodedBytes <= 0 || c.EncodedBytes >= c.LogicalBytes {
				t.Fatalf("tags.s manifest sizes encoded=%d logical=%d", c.EncodedBytes, c.LogicalBytes)
			}
		}
	}
	if !found {
		t.Fatal("tags.s missing from manifest")
	}
}

// TestEncodedWALReplay recovers a crash image whose segment store is
// encoded and whose WAL tail mutates the encoded columns (the replay path
// must transparently decode before applying DML).
func TestEncodedWALReplay(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "db")
	db := buildEncDB(t, dir)
	if err := db.Save(); err != nil { // encoded segments on disk
		t.Fatal(err)
	}
	db.MustQuery(`INSERT INTO tags VALUES (9999, 'late')`)
	db.MustQuery(`UPDATE tags SET a = -1 WHERE a = 600`)
	db.MustQuery(`UPDATE big SET v = 7 WHERE t < 10`)
	// No Close: crash. Recovery replays the tail over the encoded store.

	image := filepath.Join(root, "crash-image")
	copyTree(t, dir, image)
	db2, err := Open(image)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r := db2.MustQuery(`SELECT COUNT(*), SUM(a) FROM tags WHERE a = -1`)
	cnt, _ := r.Value(0, 0).AsInt()
	if cnt != 585 {
		t.Fatalf("replayed UPDATE hit %d rows, want 585", cnt)
	}
	r = db2.MustQuery(`SELECT COUNT(*) FROM tags`)
	if cnt, _ = r.Value(0, 0).AsInt(); cnt != 4097 {
		t.Fatalf("replayed INSERT lost: COUNT=%d, want 4097", cnt)
	}
	v, _, err := db2.ReadAttrInts("big", "v")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if v[i] != 7 {
			t.Fatalf("replayed array UPDATE lost at cell %d: %d, want 7", i, v[i])
		}
	}
	if v[600*500/500] == 7 && v[600] != 1 {
		t.Fatalf("replay overreached: cell 600 = %d", v[600])
	}
}

// TestEncodedCrashTruncation cuts the WAL tail over an encoded base at
// every 11th byte: recovery must land exactly on a committed prefix, with
// the encoded segments intact underneath.
func TestEncodedCrashTruncation(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "db")
	db := buildEncDB(t, dir)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	db.SetWALCheckpointBytes(0) // keep the tail in the log

	probe := func(d *DB) string {
		var sb strings.Builder
		for _, q := range []string{
			`SELECT COUNT(*), SUM(a) FROM tags`,
			`SELECT COUNT(*) FROM tags WHERE s = 'late'`,
		} {
			r, err := d.Query(q)
			if err != nil {
				sb.WriteString("err: " + err.Error() + "\n")
				continue
			}
			sb.WriteString(r.String())
		}
		return sb.String()
	}

	boundaries := []int64{db.WALSize()}
	expected := map[int64]string{db.WALSize(): probe(db)}
	for _, stmt := range []string{
		`INSERT INTO tags VALUES (1, 'late')`,
		`UPDATE tags SET a = a + 1 WHERE a >= 500`,
		`DELETE FROM tags WHERE a = 101`,
		`BEGIN; INSERT INTO tags VALUES (2, 'late'); INSERT INTO tags VALUES (3, 'late'); COMMIT`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
		sz := db.WALSize()
		boundaries = append(boundaries, sz)
		expected[sz] = probe(db)
	}
	image := filepath.Join(root, "crash-image")
	copyTree(t, dir, image)

	full := boundaries[len(boundaries)-1]
	work := filepath.Join(t.TempDir(), "work")
	for cut := boundaries[0]; cut <= full; cut += 11 {
		os.RemoveAll(work)
		copyTree(t, image, work)
		if err := os.Truncate(filepath.Join(work, "wal.log"), cut); err != nil {
			t.Fatal(err)
		}
		rdb, err := Open(work)
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		got := probe(rdb)
		if err := rdb.Close(); err != nil {
			t.Fatal(err)
		}
		want := stateAt(cut, boundaries, expected)
		if got != want {
			t.Fatalf("cut at %d: recovered state diverges\n--- got ---\n%s\n--- want ---\n%s", cut, got, want)
		}
	}
	db.Close()
}

// TestEncodingsDisabledCheckpoint covers the -encodings=false path: with
// the gate off the checkpoint stores plain segments (older manifest
// readers keep working), and re-enabling encodes at the next checkpoint.
func TestEncodingsDisabledCheckpoint(t *testing.T) {
	prev := bat.SetEncodingsEnabled(false)
	defer bat.SetEncodingsEnabled(prev)

	dir := filepath.Join(t.TempDir(), "db")
	db := buildEncDB(t, dir)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if b := attrBat(t, db, "big", "v"); b.Encoded() {
		t.Fatal("encodings disabled but checkpoint encoded big.v")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b := attrBat(t, db2, "big", "v"); b.Encoded() {
		t.Fatal("plain checkpoint reloaded as encoded")
	}
	sum := int64(0)
	v, _, err := db2.ReadAttrInts("big", "v")
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range v {
		sum += x
	}
	if want := int64(0); sum == want {
		t.Fatal("plain reload lost the data")
	}

	// Re-enable: the next checkpoint of a dirty object upgrades its
	// segments in place (clean objects are left alone — encoding happens
	// when segments rewrite).
	bat.SetEncodingsEnabled(true)
	db2.MustQuery(`UPDATE big SET v = 123 WHERE t = 0`)
	if err := db2.Save(); err != nil {
		t.Fatal(err)
	}
	if b := attrBat(t, db2, "big", "v"); !b.Encoded() {
		t.Fatal("re-enabled checkpoint did not encode big.v")
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if b := attrBat(t, db3, "big", "v"); !b.Encoded() {
		t.Fatal("upgraded store reloaded plain")
	}
}

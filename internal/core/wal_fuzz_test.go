package core

import (
	"os"
	"path/filepath"
	"testing"
)

// buildFuzzBase creates a small checkpointed database and returns its
// directory plus a valid WAL tail (two committed statements) recorded on
// top of that checkpoint. Deterministic: every call produces the same
// checkpoint generation and the same log bytes.
func buildFuzzBase(tb testing.TB, root string) (dir string, walBytes []byte) {
	tb.Helper()
	dir = filepath.Join(root, "db")
	db, err := Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	db.SetWALCheckpointBytes(0)
	db.MustQuery(`CREATE TABLE t (a INT, s VARCHAR)`)
	db.MustQuery(`INSERT INTO t VALUES (1, 'one'), (2, 'two')`)
	db.MustQuery(`CREATE ARRAY g (x INT DIMENSION[0:1:2], v DOUBLE DEFAULT 0.25)`)
	if err := db.Close(); err != nil { // checkpoint; wal resets to header-only
		tb.Fatal(err)
	}
	db, err = Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	db.SetWALCheckpointBytes(0)
	db.MustQuery(`INSERT INTO t VALUES (3, 'three')`)
	db.MustQuery(`UPDATE g SET v = x + 0.5 WHERE x > 0`)
	walBytes, err = os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		tb.Fatal(err)
	}
	// Abandon without Close: the base image is a crash image whose log
	// holds the two commits. (The leaked handle is fine for tests.)
	return dir, walBytes
}

// FuzzWALReplay feeds arbitrary bytes as the wal.log of an otherwise
// intact database. The contract under any corruption: opening either
// succeeds with a structurally sound catalog (torn/corrupt tails are
// discarded silently — that is a normal crash artifact) or fails with a
// clean recovery error. It must never panic and never leave a
// half-applied record visible.
func FuzzWALReplay(f *testing.F) {
	_, valid := buildFuzzBase(f, f.TempDir())
	f.Add(valid)                // the intact log
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(valid[:14])           // header only
	f.Add([]byte{})             // empty file
	f.Add([]byte("SCQW"))       // truncated header
	f.Add([]byte("garbage not a wal at all"))
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0xff
	f.Add(mut) // corrupted middle

	f.Fuzz(func(t *testing.T, data []byte) {
		root := t.TempDir()
		dir, _ := buildFuzzBase(t, root)
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir)
		if err != nil {
			return // clean recovery error: acceptable for corrupt input
		}
		defer db.Close()
		if err := db.CheckIntegrity(); err != nil {
			t.Fatalf("recovered database fails integrity check: %v", err)
		}
		// The checkpointed prefix must be untouchable by log corruption:
		// rows 1 and 2 live in segment files, not the log.
		r, err := db.Query(`SELECT COUNT(*) FROM t WHERE a <= 2`)
		if err != nil {
			t.Fatalf("probe query after recovery: %v", err)
		}
		if n, _ := r.Value(0, 0).AsInt(); n != 2 {
			t.Fatalf("checkpointed rows damaged by wal bytes: %d of 2 remain", n)
		}
	})
}

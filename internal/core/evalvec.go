package core

import (
	"fmt"

	"repro/internal/bat"
	"repro/internal/gdk"
	"repro/internal/rel"
	"repro/internal/types"
)

// evalVec evaluates a bound scalar expression over aligned physical
// columns, returning an aligned result column. DML statements use it to
// compute WHERE masks and SET values directly over table/array storage
// (the query path goes through MAL instead).
func evalVec(cols []*bat.BAT, n int, e rel.Expr) (gdk.Opnd, error) {
	switch x := e.(type) {
	case *rel.Col:
		if x.Idx < 0 || x.Idx >= len(cols) {
			return gdk.Opnd{}, fmt.Errorf("column ordinal %d out of range", x.Idx)
		}
		return gdk.B(cols[x.Idx]), nil
	case *rel.Const:
		return gdk.C(x.Val, n), nil
	case *rel.Bin:
		l, err := evalVec(cols, n, x.L)
		if err != nil {
			return gdk.Opnd{}, err
		}
		r, err := evalVec(cols, n, x.R)
		if err != nil {
			return gdk.Opnd{}, err
		}
		var out *bat.BAT
		switch x.Op {
		case "+", "-", "*", "/", "%":
			out, err = gdk.Arith(x.Op, l, r, nil)
		case "=", "<>", "<", "<=", ">", ">=":
			out, err = gdk.Compare(x.Op, l, r, nil)
		case "AND":
			out, err = gdk.And(l, r, nil)
		case "OR":
			out, err = gdk.Or(l, r, nil)
		case "||":
			out, err = gdk.Concat(l, r, nil)
		case "like":
			out, err = gdk.Like(l, r, nil)
		case "pow":
			out, err = gdk.Power(l, r, nil)
		default:
			return gdk.Opnd{}, fmt.Errorf("unknown operator %q", x.Op)
		}
		if err != nil {
			return gdk.Opnd{}, err
		}
		return gdk.B(out), nil
	case *rel.Un:
		xe, err := evalVec(cols, n, x.X)
		if err != nil {
			return gdk.Opnd{}, err
		}
		var out *bat.BAT
		switch x.Op {
		case "-", "abs", "sqrt", "floor", "ceil", "exp", "log", "round", "sign":
			out, err = gdk.UnaryNum(x.Op, xe, nil)
		case "not":
			out, err = gdk.Not(xe, nil)
		case "isnull":
			out, err = gdk.IsNull(xe, nil)
		case "upper", "lower", "length":
			out, err = gdk.StrUnary(x.Op, xe, nil)
		default:
			return gdk.Opnd{}, fmt.Errorf("unknown unary operator %q", x.Op)
		}
		if err != nil {
			return gdk.Opnd{}, err
		}
		return gdk.B(out), nil
	case *rel.IfElse:
		c, err := evalVec(cols, n, x.Cond)
		if err != nil {
			return gdk.Opnd{}, err
		}
		t, err := evalVec(cols, n, x.Then)
		if err != nil {
			return gdk.Opnd{}, err
		}
		f, err := evalVec(cols, n, x.Else)
		if err != nil {
			return gdk.Opnd{}, err
		}
		out, err := gdk.IfThenElse(c, t, f, nil)
		if err != nil {
			return gdk.Opnd{}, err
		}
		return gdk.B(out), nil
	case *rel.Cast:
		xe, err := evalVec(cols, n, x.X)
		if err != nil {
			return gdk.Opnd{}, err
		}
		out, err := gdk.CastBAT(xe, x.To, nil)
		if err != nil {
			return gdk.Opnd{}, err
		}
		return gdk.B(out), nil
	case *rel.Substr:
		s, err := evalVec(cols, n, x.X)
		if err != nil {
			return gdk.Opnd{}, err
		}
		from, err := evalVec(cols, n, x.From)
		if err != nil {
			return gdk.Opnd{}, err
		}
		forO, err := evalVec(cols, n, x.For)
		if err != nil {
			return gdk.Opnd{}, err
		}
		out, err := gdk.Substring(s, from, forO, nil)
		if err != nil {
			return gdk.Opnd{}, err
		}
		return gdk.B(out), nil
	case *rel.CellFetch:
		coords := make([]*bat.BAT, len(x.Coords))
		for i, ce := range x.Coords {
			o, err := evalVec(cols, n, ce)
			if err != nil {
				return gdk.Opnd{}, err
			}
			coords[i] = materialize(o, n, types.KindInt)
		}
		out, err := gdk.CellFetch(x.A.AttrBats[x.AttrIdx], x.A.Shape, coords)
		if err != nil {
			return gdk.Opnd{}, err
		}
		return gdk.B(out), nil
	default:
		return gdk.Opnd{}, fmt.Errorf("cannot evaluate expression %T", e)
	}
}

// evalVecBAT evaluates and materialises to a column.
func evalVecBAT(cols []*bat.BAT, n int, e rel.Expr) (*bat.BAT, error) {
	o, err := evalVec(cols, n, e)
	if err != nil {
		return nil, err
	}
	return materialize(o, n, e.Kind()), nil
}

func materialize(o gdk.Opnd, n int, k types.Kind) *bat.BAT {
	if !o.IsConst() {
		return o.BAT()
	}
	kind := o.ConstValue().Kind()
	if kind == types.KindVoid {
		kind = k
	}
	if kind == types.KindVoid {
		kind = types.KindInt
	}
	b, err := bat.Filler(n, o.ConstValue(), kind)
	if err != nil {
		// Fall back to a null column of the requested kind.
		b, _ = bat.Filler(n, types.NullUnknown(), kind)
	}
	return b
}

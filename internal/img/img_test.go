package img

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestPGMRoundtrip(t *testing.T) {
	m := Gradient(17, 9)
	var buf bytes.Buffer
	if err := m.EncodePGM(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Error("P5 roundtrip changed pixels")
	}
}

func TestPGMRoundtripProperty(t *testing.T) {
	f := func(seed uint64, w8, h8 uint8) bool {
		w := int(w8%20) + 1
		h := int(h8%20) + 1
		m := RemoteSensing(w, h, seed)
		var buf bytes.Buffer
		if err := m.EncodePGM(&buf); err != nil {
			return false
		}
		got, err := DecodePGM(&buf)
		return err == nil && got.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDecodeP2ASCII(t *testing.T) {
	src := "P2\n# a comment\n3 2\n255\n0 128 255\n1 2 3\n"
	m, err := DecodePGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.W != 3 || m.H != 2 {
		t.Fatalf("size %dx%d", m.W, m.H)
	}
	if m.At(1, 0) != 128 || m.At(2, 1) != 3 {
		t.Errorf("pixels: %v", m.Pix)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"P6\n1 1\n255\nx",    // wrong magic
		"P5\n0 1\n255\n",     // zero width
		"P5\n2 2\n70000\n",   // bad maxval
		"P5\n2 2\n255\n\x00", // truncated payload
	}
	for _, src := range cases {
		if _, err := DecodePGM(strings.NewReader(src)); err == nil {
			t.Errorf("accepted invalid PGM %q", src)
		}
	}
}

func TestFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m := Checkerboard(10, 6, 2)
	path := dir + "/cb.pgm"
	if err := m.SavePGM(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPGM(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Error("file roundtrip changed pixels")
	}
}

func TestSyntheticScenesDeterministic(t *testing.T) {
	a := RemoteSensing(32, 32, 9)
	b := RemoteSensing(32, 32, 9)
	if !a.Equal(b) {
		t.Error("RemoteSensing is not deterministic for a fixed seed")
	}
	c := RemoteSensing(32, 32, 10)
	if a.Equal(c) {
		t.Error("different seeds should differ")
	}
	if !Building(40, 30).Equal(Building(40, 30)) {
		t.Error("Building is not deterministic")
	}
}

func TestBuildingHasStructure(t *testing.T) {
	m := Building(64, 64)
	// The facade must be darker than the sky and the windows darker still.
	sky := m.At(2, 2)
	facade := m.At(32, 40)
	if facade >= sky {
		t.Errorf("facade %d should be darker than sky %d", facade, sky)
	}
	hist := map[uint8]int{}
	for _, v := range m.Pix {
		hist[v]++
	}
	if len(hist) < 4 {
		t.Errorf("building scene too uniform: %d levels", len(hist))
	}
}

func TestRemoteSensingWaterAndLand(t *testing.T) {
	m := RemoteSensing(64, 64, 3)
	dark, bright := 0, 0
	for _, v := range m.Pix {
		if v < 40 {
			dark++
		} else {
			bright++
		}
	}
	if dark == 0 || bright == 0 {
		t.Errorf("scene needs both water (%d) and land (%d)", dark, bright)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Gradient(4, 4)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("clone aliases the original")
	}
}

func TestGradientRange(t *testing.T) {
	m := Gradient(16, 16)
	if m.At(0, 0) >= m.At(15, 15) {
		t.Error("gradient should increase diagonally")
	}
}

func TestCheckerboard(t *testing.T) {
	m := Checkerboard(8, 8, 2)
	if m.At(0, 0) == m.At(2, 0) {
		t.Error("adjacent tiles must differ")
	}
	if m.At(0, 0) != m.At(2, 2) {
		t.Error("diagonal tiles must match")
	}
}

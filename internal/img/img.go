// Package img is the raster-image substrate standing in for the paper's
// GeoTIFF files (§4, Scenario II). GeoTIFF needs a C library (GDAL) and
// the TELEIOS remote-sensing data is not redistributable, so this package
// provides: a grey-scale raster type, PGM (P2/P5) codecs for interchange,
// and deterministic synthetic scene generators that mimic the two demo
// images (a "classic building" photograph and a remote-sensing earth
// scene). The array code paths exercised are identical: a 2-D grid of
// integer intensities.
package img

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Image is a grey-scale raster with 8-bit intensities stored row-major
// (y-major: idx = y*W + x, matching PGM scanline order).
type Image struct {
	W, H int
	Pix  []uint8
}

// New returns a black image.
func New(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the intensity at (x, y).
func (m *Image) At(x, y int) uint8 { return m.Pix[y*m.W+x] }

// Set writes the intensity at (x, y).
func (m *Image) Set(x, y int, v uint8) { m.Pix[y*m.W+x] = v }

// Clone returns a deep copy.
func (m *Image) Clone() *Image {
	c := New(m.W, m.H)
	copy(c.Pix, m.Pix)
	return c
}

// Equal reports pixel equality.
func (m *Image) Equal(o *Image) bool {
	if m.W != o.W || m.H != o.H {
		return false
	}
	for i := range m.Pix {
		if m.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// clamp8 clamps an integer to the 8-bit intensity range.
func clamp8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// ---------------------------------------------------------------- PGM I/O

// EncodePGM writes the image in binary PGM (P5).
func (m *Image) EncodePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", m.W, m.H)
	if _, err := bw.Write(m.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodePGM reads a PGM image (P5 binary or P2 ASCII).
func DecodePGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("img: unsupported format %q (want P2/P5)", magic)
	}
	var dims [3]int
	for i := 0; i < 3; i++ {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(tok, "%d", &dims[i]); err != nil {
			return nil, fmt.Errorf("img: bad header token %q", tok)
		}
	}
	w, h, maxval := dims[0], dims[1], dims[2]
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("img: implausible dimensions %dx%d", w, h)
	}
	if maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("img: unsupported maxval %d", maxval)
	}
	out := New(w, h)
	if magic == "P5" {
		if _, err := io.ReadFull(br, out.Pix); err != nil {
			return nil, err
		}
		return out, nil
	}
	for i := range out.Pix {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, err
		}
		var v int
		if _, err := fmt.Sscanf(tok, "%d", &v); err != nil {
			return nil, fmt.Errorf("img: bad pixel token %q", tok)
		}
		out.Pix[i] = clamp8(v)
	}
	return out, nil
}

// pgmToken reads the next whitespace-separated token, skipping # comments.
func pgmToken(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		c, err := br.ReadByte()
		if err != nil {
			if sb.Len() > 0 && err == io.EOF {
				return sb.String(), nil
			}
			return "", err
		}
		switch {
		case c == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if sb.Len() > 0 {
				return sb.String(), nil
			}
		default:
			sb.WriteByte(c)
		}
	}
}

// SavePGM writes the image to a file.
func (m *Image) SavePGM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.EncodePGM(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadPGM reads an image from a file.
func LoadPGM(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodePGM(f)
}

// --------------------------------------------------------- synthetic data

// xorshift is a tiny deterministic PRNG so scenes are reproducible without
// math/rand seeding ambiguity across Go versions.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// Building synthesises the "classic building" demo image: a sky gradient,
// a rectangular facade with a window grid and a door — plenty of straight
// edges for the EdgeDetection query to find.
func Building(w, h int) *Image {
	m := New(w, h)
	for y := 0; y < h; y++ {
		sky := clamp8(200 - (y*80)/h)
		for x := 0; x < w; x++ {
			m.Set(x, y, sky)
		}
	}
	// Facade.
	fx0, fx1 := w/6, w-w/6
	fy0, fy1 := h/4, h-h/12
	for y := fy0; y < fy1; y++ {
		for x := fx0; x < fx1; x++ {
			m.Set(x, y, 120)
		}
	}
	// Window grid.
	cols, rows := 6, 4
	ww := (fx1 - fx0) / (2 * cols)
	wh := (fy1 - fy0) / (2 * rows)
	if ww > 0 && wh > 0 {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				x0 := fx0 + (2*c+1)*(fx1-fx0)/(2*cols) - ww/2
				y0 := fy0 + (2*r+1)*(fy1-fy0)/(2*rows) - wh/2
				for y := y0; y < y0+wh && y < fy1; y++ {
					for x := x0; x < x0+ww && x < fx1; x++ {
						m.Set(x, y, 40)
					}
				}
			}
		}
	}
	// Door.
	dw, dh := (fx1-fx0)/8, (fy1-fy0)/3
	dx0 := (fx0 + fx1 - dw) / 2
	for y := fy1 - dh; y < fy1; y++ {
		for x := dx0; x < dx0+dw; x++ {
			m.Set(x, y, 25)
		}
	}
	return m
}

// RemoteSensing synthesises the "remote sensing image of the earth" demo
// scene: dark water, brighter land masses with noisy texture, and a few
// very bright urban patches. Intensities follow the demo's water-filter
// assumption (water is dark).
func RemoteSensing(w, h int, seed uint64) *Image {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	rng := xorshift(seed)
	m := New(w, h)
	// Water base.
	for i := range m.Pix {
		m.Pix[i] = uint8(10 + rng.intn(15)) // 10..24
	}
	// Land masses: random blobby ellipses.
	nBlobs := 3 + (w*h)/8192
	for b := 0; b < nBlobs; b++ {
		cx, cy := rng.intn(w), rng.intn(h)
		rx, ry := w/8+rng.intn(w/6+1), h/8+rng.intn(h/6+1)
		base := 90 + rng.intn(60)
		for y := cy - ry; y <= cy+ry; y++ {
			if y < 0 || y >= h {
				continue
			}
			for x := cx - rx; x <= cx+rx; x++ {
				if x < 0 || x >= w {
					continue
				}
				dx := float64(x-cx) / float64(rx)
				dy := float64(y-cy) / float64(ry)
				if dx*dx+dy*dy <= 1 {
					m.Set(x, y, clamp8(base+rng.intn(30)-15))
				}
			}
		}
	}
	// Urban bright patches on land.
	for b := 0; b < nBlobs; b++ {
		cx, cy := rng.intn(w), rng.intn(h)
		if m.At(cx, cy) < 60 {
			continue // skip water
		}
		r := 2 + rng.intn(5)
		for y := cy - r; y <= cy+r; y++ {
			for x := cx - r; x <= cx+r; x++ {
				if x >= 0 && x < w && y >= 0 && y < h {
					m.Set(x, y, clamp8(220+rng.intn(35)))
				}
			}
		}
	}
	return m
}

// Gradient returns a diagonal intensity ramp (deterministic test fixture).
func Gradient(w, h int) *Image {
	m := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			m.Set(x, y, clamp8((x+y)*255/(w+h-2+1)))
		}
	}
	return m
}

// Checkerboard returns an alternating tile pattern.
func Checkerboard(w, h, tile int) *Image {
	m := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if ((x/tile)+(y/tile))%2 == 0 {
				m.Set(x, y, 230)
			} else {
				m.Set(x, y, 30)
			}
		}
	}
	return m
}

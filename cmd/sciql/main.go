// Command sciql is an interactive shell for the SciQL engine — the
// stand-in for the demo GUI of the paper's Fig. 4/5. It reads SQL/SciQL
// statements (terminated by ';'), executes them and renders results;
// 2-D array results can additionally be displayed as coordinate grids,
// like the matrices of the paper's Fig. 1.
//
// Usage:
//
//	sciql [-d dir] [-e "statements"] [-grid] [-threads n] [-encodings=false]
//	      [-join-order syntactic|greedy|dp] [file.sql ...]
//
// With -d the database persists to the directory on exit. With -e (or SQL
// files as arguments) statements run non-interactively. Inside the shell:
//
//	\q            quit
//	\d            list tables and arrays
//	\grid on|off  toggle grid rendering of 2-D array results
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	sciql "repro"
)

func main() {
	dir := flag.String("d", "", "database directory (empty: in-memory)")
	exec := flag.String("e", "", "statements to execute and exit")
	grid := flag.Bool("grid", false, "render 2-D array results as grids")
	threads := flag.Int("threads", 0, "kernel worker threads (0: GOMAXPROCS)")
	encodings := flag.Bool("encodings", true,
		"compress column segments per 64K slab (RLE/dict/FOR/delta) at checkpoints")
	joinOrder := flag.String("join-order", "greedy",
		"multi-way join ordering: syntactic, greedy or dp")
	flag.Parse()

	sciql.SetThreads(*threads)
	sciql.SetEncodingsEnabled(*encodings)
	if err := sciql.SetJoinOrder(*joinOrder); err != nil {
		fmt.Fprintln(os.Stderr, "sciql:", err)
		os.Exit(2)
	}

	var (
		db  *sciql.DB
		err error
	)
	if *dir != "" {
		db, err = sciql.Open(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sciql:", err)
			os.Exit(1)
		}
	} else {
		db = sciql.New()
	}
	defer db.Close()

	run := func(src string) bool {
		results, err := db.Exec(src)
		for _, r := range results {
			printResult(r, *grid)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return false
		}
		return true
	}

	if *exec != "" {
		if !run(*exec) {
			os.Exit(1)
		}
		return
	}
	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sciql:", err)
				os.Exit(1)
			}
			if !run(string(data)) {
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("SciQL shell — array data processing inside an RDBMS")
	fmt.Println(`type statements ending in ';', \d to list objects, \q to quit`)
	repl(db, grid)
}

func repl(db *sciql.DB, grid *bool) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "sciql> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			switch {
			case trimmed == `\q`:
				return
			case trimmed == `\d`:
				cat := db.Catalog()
				for _, n := range cat.TableNames() {
					fmt.Println("table", n)
				}
				for _, n := range cat.ArrayNames() {
					a, _ := cat.Array(n)
					fmt.Println("array", n, a.Shape)
				}
			case trimmed == `\grid on`:
				*grid = true
			case trimmed == `\grid off`:
				*grid = false
			default:
				fmt.Println(`unknown command (try \q, \d, \grid on|off)`)
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			src := buf.String()
			buf.Reset()
			prompt = "sciql> "
			results, err := db.Exec(src)
			for _, r := range results {
				printResult(r, *grid)
			}
			if err != nil {
				fmt.Println("error:", err)
			}
		} else {
			prompt = "  ...> "
		}
	}
}

func printResult(r *sciql.Result, grid bool) {
	if r == nil {
		return
	}
	if grid && r.IsArray && len(r.Shape) == 2 {
		if g, err := r.Grid(); err == nil {
			fmt.Print(g)
			return
		}
	}
	out := r.String()
	fmt.Print(out)
	if !strings.HasSuffix(out, "\n") {
		fmt.Println()
	}
}

// Command sciqld serves a SciQL database over the network: an HTTP/JSON
// endpoint (POST /query, GET /healthz) and a newline-delimited text
// protocol share one port. It is the engine's mserver equivalent — many
// concurrent clients, snapshot-isolated parallel reads, single-writer
// transactions.
//
// Usage:
//
//	sciqld [-addr :8642] [-db dir] [-threads n] [-max-sessions n]
//	       [-wal-checkpoint-bytes n] [-commit-queue n] [-query-timeout d]
//	       [-drain-timeout d] [-shutdown-timeout d] [-read-only]
//	       [-replica-of host:port] [-encodings=false]
//
// SIGTERM/SIGINT drain gracefully: new statements are refused (HTTP
// 503, text "!error: server is shutting down") while in-flight ones
// finish, bounded by -drain-timeout, then the store checkpoints and
// closes.
//
// -replica-of runs the node as a WAL-shipped read replica of another
// sciqld: it bootstraps from the primary's checkpoint snapshot, tails
// the primary's log, and serves snapshot-isolated reads while refusing
// writes. POST /promote (or SIGUSR1) stops the stream, verifies the
// applied prefix and opens the write path — failover. -read-only serves
// an existing database without ever writing it.
//
// Try it:
//
//	sciqld -addr :8642 &
//	curl -s localhost:8642/query -d '{"query":"SELECT 1 + 1"}'
//	printf 'SELECT 40 + 2\n' | nc localhost 8642
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	sciql "repro"
	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8642", "TCP listen address (HTTP/JSON + text protocol)")
	dir := flag.String("db", "", "database directory (empty: in-memory)")
	threads := flag.Int("threads", 0, "kernel worker threads (0: GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "maximum concurrent client sessions")
	workers := flag.Int("workers", 0, "concurrent statement executions admitted (0: GOMAXPROCS)")
	ckptBytes := flag.Int64("wal-checkpoint-bytes", core.DefaultCheckpointBytes,
		"WAL size that triggers an incremental checkpoint (<=0: only checkpoint on shutdown)")
	queryTimeout := flag.Duration("query-timeout", 0,
		"per-statement execution deadline; past it the running kernel is cancelled (0: none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long shutdown waits for in-flight statements before cancelling them")
	shutdownTimeout := flag.Duration("shutdown-timeout", server.DefaultShutdownTimeout,
		"how long a forced close waits for in-flight HTTP requests")
	commitQueue := flag.Int("commit-queue", 0,
		"group commit: max commit batches coalesced into one WAL fsync (0: default 256, negative: serialized one-fsync-per-commit)")
	readOnly := flag.Bool("read-only", false,
		"serve the database without ever writing it (writes refused, no checkpoints)")
	replicaOf := flag.String("replica-of", "",
		"primary address to replicate from; serves reads, refuses writes until promoted")
	encodings := flag.Bool("encodings", true,
		"compress column segments per 64K slab (RLE/dict/FOR/delta) at checkpoints")
	joinOrder := flag.String("join-order", "greedy",
		"multi-way join ordering: syntactic, greedy or dp")
	flag.Parse()

	sciql.SetThreads(*threads)
	sciql.SetEncodingsEnabled(*encodings)
	if err := sciql.SetJoinOrder(*joinOrder); err != nil {
		fmt.Fprintln(os.Stderr, "sciqld:", err)
		os.Exit(2)
	}

	var (
		db     *sciql.DB
		tailer *repl.Tailer
		err    error
	)
	switch {
	case *replicaOf != "":
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "sciqld: -replica-of requires -db (the replica must persist what it applies)")
			os.Exit(1)
		}
		tailer, err = repl.Open(repl.Options{Primary: *replicaOf, Dir: *dir, CheckpointBytes: *ckptBytes})
		if tailer != nil {
			db = tailer.DB()
		}
	case *dir != "":
		// The threshold is passed into Open so it also governs whether a
		// large recovered log is folded during startup.
		opts := core.OpenOptions{CheckpointBytes: *ckptBytes, CommitQueue: *commitQueue}
		if *readOnly {
			opts.ReadOnly = "-read-only flag"
		}
		db, err = core.OpenDB(*dir, opts)
	case *readOnly:
		err = fmt.Errorf("-read-only requires -db (an in-memory database has nothing to serve)")
	default:
		db = sciql.New()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sciqld:", err)
		os.Exit(1)
	}

	srv := server.New(db, server.Config{
		Addr:            *addr,
		MaxSessions:     *maxSessions,
		Workers:         *workers,
		QueryTimeout:    *queryTimeout,
		ShutdownTimeout: *shutdownTimeout,
	})
	if tailer != nil {
		srv.SetReplication(tailer)
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "sciqld:", err)
		os.Exit(1)
	}
	fmt.Printf("sciqld listening on %s (db: %s)\n", srv.Addr(), dbLabel(*dir))
	if tailer != nil {
		tailer.Start()
		fmt.Printf("sciqld: replicating from %s (SIGUSR1 or POST /promote to promote)\n", *replicaOf)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	promote := make(chan os.Signal, 1)
	signal.Notify(promote, syscall.SIGUSR1)
	for done := false; !done; {
		select {
		case <-promote:
			if tailer == nil {
				fmt.Fprintln(os.Stderr, "sciqld: SIGUSR1 ignored: not a replica")
				continue
			}
			pos, perr := tailer.Promote(context.Background())
			if perr != nil {
				fmt.Fprintln(os.Stderr, "sciqld: promote:", perr)
				continue
			}
			fmt.Printf("sciqld: promoted to primary at generation %d offset %d\n", pos.Gen, pos.Offset)
		case <-sig:
			done = true
		}
	}
	fmt.Println("sciqld: draining (refusing new statements)")
	if tailer != nil {
		tailer.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	_ = srv.Drain(ctx)
	cancel()
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sciqld:", err)
		os.Exit(1)
	}
}

func dbLabel(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}

// Command sciqld serves a SciQL database over the network: an HTTP/JSON
// endpoint (POST /query, GET /healthz) and a newline-delimited text
// protocol share one port. It is the engine's mserver equivalent — many
// concurrent clients, snapshot-isolated parallel reads, single-writer
// transactions.
//
// Usage:
//
//	sciqld [-addr :8642] [-db dir] [-threads n] [-max-sessions n]
//	       [-wal-checkpoint-bytes n] [-query-timeout d] [-drain-timeout d]
//	       [-shutdown-timeout d]
//
// SIGTERM/SIGINT drain gracefully: new statements are refused (HTTP
// 503, text "!error: server is shutting down") while in-flight ones
// finish, bounded by -drain-timeout, then the store checkpoints and
// closes.
//
// Try it:
//
//	sciqld -addr :8642 &
//	curl -s localhost:8642/query -d '{"query":"SELECT 1 + 1"}'
//	printf 'SELECT 40 + 2\n' | nc localhost 8642
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	sciql "repro"
	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8642", "TCP listen address (HTTP/JSON + text protocol)")
	dir := flag.String("db", "", "database directory (empty: in-memory)")
	threads := flag.Int("threads", 0, "kernel worker threads (0: GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "maximum concurrent client sessions")
	workers := flag.Int("workers", 0, "concurrent statement executions admitted (0: GOMAXPROCS)")
	ckptBytes := flag.Int64("wal-checkpoint-bytes", core.DefaultCheckpointBytes,
		"WAL size that triggers an incremental checkpoint (<=0: only checkpoint on shutdown)")
	queryTimeout := flag.Duration("query-timeout", 0,
		"per-statement execution deadline; past it the running kernel is cancelled (0: none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long shutdown waits for in-flight statements before cancelling them")
	shutdownTimeout := flag.Duration("shutdown-timeout", server.DefaultShutdownTimeout,
		"how long a forced close waits for in-flight HTTP requests")
	flag.Parse()

	sciql.SetThreads(*threads)

	var (
		db  *sciql.DB
		err error
	)
	if *dir != "" {
		// The threshold is passed into Open so it also governs whether a
		// large recovered log is folded during startup.
		db, err = core.OpenWith(*dir, *ckptBytes)
	} else {
		db = sciql.New()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sciqld:", err)
		os.Exit(1)
	}

	srv := server.New(db, server.Config{
		Addr:            *addr,
		MaxSessions:     *maxSessions,
		Workers:         *workers,
		QueryTimeout:    *queryTimeout,
		ShutdownTimeout: *shutdownTimeout,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "sciqld:", err)
		os.Exit(1)
	}
	fmt.Printf("sciqld listening on %s (db: %s)\n", srv.Addr(), dbLabel(*dir))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("sciqld: draining (refusing new statements)")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	_ = srv.Drain(ctx)
	cancel()
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sciqld:", err)
		os.Exit(1)
	}
}

func dbLabel(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}

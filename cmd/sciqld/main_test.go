package main

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/server/client"
)

// TestSIGTERMDrain exercises the daemon end to end: build the binary,
// start it, put a long statement in flight, send SIGTERM, and require
// that (a) new statements are refused, (b) the in-flight statement runs
// to completion, and (c) the process drains and exits cleanly.
func TestSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the sciqld binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "sciqld")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain-timeout", "60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	// First stdout line: "sciqld listening on 127.0.0.1:PORT (db: ...)".
	br := bufio.NewScanner(stdout)
	if !br.Scan() {
		t.Fatal("no startup line from sciqld")
	}
	fields := strings.Fields(br.Text())
	if len(fields) < 4 {
		t.Fatalf("unexpected startup line %q", br.Text())
	}
	addr := fields[3]
	lines := make(chan string, 64)
	go func() {
		for br.Scan() {
			lines <- br.Text()
		}
		close(lines)
	}()

	c := client.New(addr)
	if _, err := c.Exec(`CREATE ARRAY seq (i INT DIMENSION[0:1:1000000], v INT DEFAULT 0);
		CREATE TABLE l (a INT); CREATE TABLE r (a INT);
		INSERT INTO l SELECT i % 65536 FROM seq;
		INSERT INTO r SELECT i % 65536 FROM seq`); err != nil {
		t.Fatalf("fixture: %v", err)
	}

	inflight := make(chan error, 1)
	go func() {
		_, err := client.New(addr).Query(`SELECT COUNT(*) FROM l JOIN r ON l.a = r.a`)
		inflight <- err
	}()
	time.Sleep(300 * time.Millisecond) // join (several seconds long) is now executing

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// New work is refused while draining (or the port is already closed
	// once the drain finished — both are valid refusals).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := client.New(addr).Query(`SELECT 1`)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("statements still admitted after SIGTERM")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The statement that was in flight at SIGTERM still completes.
	select {
	case err := <-inflight:
		if err != nil {
			t.Fatalf("in-flight statement killed by drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("in-flight statement never returned")
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sciqld exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sciqld did not exit after drain")
	}
	var sawDrain bool
	for l := range lines {
		if strings.Contains(l, "draining") {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatal("sciqld never announced draining")
	}
}

package main

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/server/client"
)

// startDaemon launches a built sciqld with the given flags and returns
// the running process plus the address it bound. Remaining stdout is
// drained so the child never blocks on a full pipe.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })
	br := bufio.NewReader(stdout)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("no startup line from sciqld %v: %v", args, err)
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		t.Fatalf("unexpected startup line %q", line)
	}
	go func() { _, _ = io.Copy(io.Discard, br) }()
	return cmd, fields[3]
}

// TestFailoverSIGKILL is the end-to-end failover drill, two real sciqld
// processes deep: a primary takes an acked write workload, a replica
// process bootstraps and tails it while serving reads the whole time
// (its /healthz showing role, source and lag), the primary is SIGKILLed,
// writes racing the failover are refused, the replica is promoted over
// HTTP, and the promoted node answers the golden probe byte-identically
// to the dead primary — exactly the acked commits, nothing else. The
// promoted store then survives a restart.
func TestFailoverSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs two sciqld processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "sciqld")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	pdir := filepath.Join(t.TempDir(), "primary")
	rdir := filepath.Join(t.TempDir(), "replica")

	primary, paddr := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-db", pdir)
	pc := client.New(paddr)
	if _, err := pc.Exec(`CREATE TABLE kv (k INT, v STRING)`); err != nil {
		t.Fatalf("fixture: %v", err)
	}

	// Acked write workload: every insert below returned success to the
	// client, so every one must survive the failover.
	acked := 0
	ack := func(t *testing.T, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := pc.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'v%d')`, acked+1, acked+1)); err != nil {
				t.Fatalf("acked write %d failed: %v", acked+1, err)
			}
			acked++
		}
	}
	ack(t, 25)

	replica, raddr := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-db", rdir, "-replica-of", paddr)
	rc := client.New(raddr)

	// A background reader hammers the replica through bootstrap,
	// catch-up, the primary's death and the promotion; it must never see
	// an error.
	stopReads := make(chan struct{})
	readsDone := make(chan struct{})
	var reads, readErrs atomic.Int64
	go func() {
		defer close(readsDone)
		c := client.New(raddr)
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			if _, err := c.Query(`SELECT 1 + 1`); err != nil {
				readErrs.Add(1)
			}
			reads.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// More acked writes land while the replica is catching up.
	ack(t, 25)

	// Before any failover, the replica's healthz must already carry its
	// role and the replication stream: source, positions, lag.
	deadline := time.Now().Add(30 * time.Second)
	var h *client.Health
	for {
		var err error
		h, err = rc.Health()
		if err == nil && h.Mode == "replica" && h.Replication != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica healthz never reported replication (last: %+v, err %v)", h, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h.Replication.Source != paddr {
		t.Fatalf("replication source = %q, want %q", h.Replication.Source, paddr)
	}

	// The acked set is final: capture the golden probe and log position
	// from the primary, then wait until the replica's healthz shows it
	// holds every acked byte (lag zero at the same position).
	const probe = `SELECT COUNT(*), SUM(k), MIN(k), MAX(k) FROM kv; SELECT COUNT(*) FROM kv WHERE k % 2 = 0`
	want, err := pc.Exec(probe)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := pc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if ph.Mode != "primary" || ph.WAL.Offset == 0 {
		t.Fatalf("primary healthz mode=%q wal=%+v", ph.Mode, ph.WAL)
	}
	for {
		h, err = rc.Health()
		if err == nil && h.WAL == ph.WAL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up to %+v (last: %+v, err %v)", ph.WAL, h, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h.Replication.LagBytes != 0 || h.Replication.LagRecords != 0 {
		t.Fatalf("caught-up replica reports lag: %+v", h.Replication)
	}

	// Writes on the replica are refused while the primary lives...
	if _, err := rc.Exec(`INSERT INTO kv VALUES (999, 'no')`); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("replica write = %v, want read-only refusal", err)
	}

	// ...then the primary dies hard, mid-workload from the clients'
	// point of view: reads are in flight on the replica and the writes
	// below race the failover. None of them may be acked.
	if err := primary.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = primary.Wait()
	for i := 0; i < 3; i++ {
		if _, err := pc.Exec(`INSERT INTO kv VALUES (1000, 'lost')`); err == nil {
			t.Fatal("write acked by a SIGKILLed primary")
		}
	}

	// The replica keeps serving reads over the dead primary's data...
	if _, err := rc.Query(`SELECT COUNT(*) FROM kv`); err != nil {
		t.Fatalf("replica read after primary death: %v", err)
	}
	// ...and promotes over HTTP to exactly the primary's last position.
	pos, err := rc.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if pos.Gen != ph.WAL.Gen || pos.Offset != ph.WAL.Offset {
		t.Fatalf("promoted at %+v, primary died at %+v", pos, ph.WAL)
	}

	// Golden probe: the promoted node answers byte-identically to the
	// dead primary — the acked commits, all of them, nothing else.
	got, err := rc.Exec(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Rendered != want[i].Rendered {
			t.Fatalf("promoted result %d diverges:\n%s\nwant:\n%s", i, got[i].Rendered, want[i].Rendered)
		}
	}

	// The promoted node accepts writes and reports itself primary.
	if _, err := rc.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'post-failover')`, acked+1)); err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	acked++
	h, err = rc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Mode != "primary" || h.Replication == nil || !h.Replication.Promoted {
		t.Fatalf("promoted healthz mode=%q repl=%+v", h.Mode, h.Replication)
	}

	// The read workload saw zero failures across the whole drill.
	close(stopReads)
	<-readsDone
	if readErrs.Load() > 0 {
		t.Fatalf("%d of %d replica reads failed during failover", readErrs.Load(), reads.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("the read workload never ran")
	}

	// Graceful shutdown, then the promoted store reopens as an ordinary
	// primary holding every acked commit.
	if err := replica.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- replica.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("promoted sciqld exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("promoted sciqld did not exit")
	}
	reopened, raddr2 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-db", rdir)
	defer func() { _ = reopened.Process.Kill() }()
	r, err := client.New(raddr2).Query(fmt.Sprintf(`SELECT COUNT(*) FROM kv WHERE k <= %d`, acked))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Rendered, fmt.Sprint(acked)) {
		t.Fatalf("reopened store lost commits: want count %d in\n%s", acked, r.Rendered)
	}
}

// Command imgproc runs the paper's Scenario II pipeline: it loads a
// grey-scale image into the database as a SciQL array (via the data
// vault), applies an image-processing operation as a single SciQL query,
// and writes the result out as a PGM file.
//
// Usage:
//
//	imgproc -op invert|edges|smooth|reduce|rotate|water|brighten|histogram|zoom \
//	        [-in file.pgm] [-out out.pgm] [-scene building|remote] [-show-sql]
//
// Without -in a synthetic demo scene is generated (the stand-in for the
// paper's GeoTIFF images; see DESIGN.md §4).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	sciql "repro"
	"repro/internal/img"
	"repro/internal/scenarios"
	"repro/internal/vault"
)

func main() {
	op := flag.String("op", "invert", "operation: invert, edges, smooth, reduce, rotate, water, brighten, histogram, zoom")
	in := flag.String("in", "", "input PGM file (default: synthetic scene)")
	out := flag.String("out", "out.pgm", "output PGM file")
	scene := flag.String("scene", "building", "synthetic scene when -in is empty: building or remote")
	size := flag.Int("size", 256, "synthetic scene size")
	showSQL := flag.Bool("show-sql", false, "print the SciQL query instead of running it")
	flag.Parse()

	var (
		m   *img.Image
		err error
	)
	if *in != "" {
		m, err = img.LoadPGM(*in)
		if err != nil {
			fail(err)
		}
	} else if *scene == "remote" {
		m = img.RemoteSensing(*size, *size, 42)
	} else {
		m = img.Building(*size, *size)
	}

	queries := map[string]string{
		"invert":    scenarios.InvertQuery("img"),
		"edges":     scenarios.EdgeDetectQuery("img"),
		"smooth":    scenarios.SmoothQuery("img"),
		"reduce":    scenarios.ReduceQuery("img"),
		"rotate":    scenarios.RotateQuery("img", m.W),
		"water":     scenarios.FilterWaterQuery("img", 40),
		"brighten":  scenarios.BrightenQuery("img", 60),
		"histogram": scenarios.HistogramQuery("img"),
		"zoom":      scenarios.ZoomQuery("img", m.W/4, m.H/4, m.W/4, m.H/4, 2),
	}
	q, ok := queries[*op]
	if !ok {
		fail(fmt.Errorf("unknown operation %q", *op))
	}
	if *showSQL {
		fmt.Println(q)
		return
	}

	db := sciql.New()
	if err := vault.LoadImage(db, "img", m); err != nil {
		fail(err)
	}
	fmt.Printf("loaded %dx%d image as SciQL array img\n", m.W, m.H)

	switch *op {
	case "histogram":
		hist, err := scenarios.Histogram(db, "img")
		if err != nil {
			fail(err)
		}
		keys := make([]int64, 0, len(hist))
		for k := range hist {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			fmt.Printf("%3d %d\n", k, hist[k])
		}
		return
	case "zoom":
		if err := scenarios.EnsureOffsets(db, 2); err != nil {
			fail(err)
		}
	}

	res, err := db.Query(q)
	if err != nil {
		fail(err)
	}
	result, err := vault.ResultImage(res)
	if err != nil {
		fail(err)
	}
	if err := result.SavePGM(*out); err != nil {
		fail(err)
	}
	fmt.Printf("%s: wrote %dx%d result to %s\n", *op, result.W, result.H, *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "imgproc:", err)
	os.Exit(1)
}

// Command lifesim runs the paper's Scenario I: Conway's Game of Life where
// every rule is a SciQL query executed inside the database. It prints each
// generation as ASCII art (the terminal stand-in for the demo GUI's red
// squares).
//
// Usage:
//
//	lifesim [-w 40] [-h 20] [-gens 20] [-pattern glider|blinker|block|soup] [-show-sql]
package main

import (
	"flag"
	"fmt"
	"os"

	sciql "repro"
	"repro/internal/scenarios"
)

func main() {
	w := flag.Int("w", 40, "board width")
	h := flag.Int("h", 20, "board height")
	gens := flag.Int("gens", 20, "generations to simulate")
	pattern := flag.String("pattern", "glider", "seed pattern: glider, blinker, block or soup")
	showSQL := flag.Bool("show-sql", false, "print the SciQL step query and exit")
	flag.Parse()

	db := sciql.New()
	life, err := scenarios.NewLife(db, "life", *w, *h)
	if err != nil {
		fail(err)
	}
	if *showSQL {
		fmt.Println(life.StepQuery())
		return
	}

	var seed [][2]int
	switch *pattern {
	case "glider":
		seed = scenarios.Glider(1, *h-5)
	case "blinker":
		seed = scenarios.Blinker(*w/2-1, *h/2)
	case "block":
		seed = scenarios.Block(*w/2-1, *h/2-1)
	case "soup":
		// A deterministic pseudo-random soup in the centre.
		state := uint64(0x2545F4914F6CDD1D)
		for i := 0; i < (*w)*(*h)/5; i++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			x := int(state % uint64(*w))
			y := int((state >> 32) % uint64(*h))
			seed = append(seed, [2]int{x, y})
		}
	default:
		fail(fmt.Errorf("unknown pattern %q", *pattern))
	}
	if err := life.Seed(seed); err != nil {
		fail(err)
	}

	for g := 0; g <= *gens; g++ {
		board, err := life.Render()
		if err != nil {
			fail(err)
		}
		pop, err := life.Population()
		if err != nil {
			fail(err)
		}
		fmt.Printf("generation %d (population %d, via SciQL aggregate):\n%s\n", g, pop, board)
		if g < *gens {
			if err := life.Step(); err != nil {
				fail(err)
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lifesim:", err)
	os.Exit(1)
}

// Cancellation benchmarks: the two costs of the fault-tolerant query
// lifecycle. BenchmarkCancelLatency measures the time from ctx.cancel()
// to QueryContext returning while a large join is mid-kernel — the
// morsel-granularity abort bound (the issue demands < 50ms at 10M rows;
// measured latencies sit in the low milliseconds). BenchmarkCtxOverhead
// compares the same query with and without a cancellable context: the
// per-morsel cancellation checks are one atomic load each and must stay
// within noise of the uncancellable path.
package sciql_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	sciql "repro"
)

// buildJoinFixture creates two n-row tables over a 64K shared key domain;
// their join runs long enough to cancel mid-kernel at every size used.
func buildJoinFixture(b *testing.B, n int) *sciql.DB {
	b.Helper()
	db := sciql.New()
	db.MustQuery(fmt.Sprintf(`CREATE ARRAY seq (i INT DIMENSION[0:1:%d], v INT DEFAULT 0)`, n))
	db.MustQuery(`CREATE TABLE l (a INT)`)
	db.MustQuery(`CREATE TABLE r (a INT)`)
	db.MustQuery(`INSERT INTO l SELECT i % 65536 FROM seq`)
	db.MustQuery(`INSERT INTO r SELECT i % 65536 FROM seq`)
	return db
}

const cancelJoinQuery = `SELECT COUNT(*) FROM l JOIN r ON l.a = r.a`

// benchCancelLatency times only cancel()→return: the query is started
// and given a head start with the timer stopped, so ns/op is the abort
// latency itself and the regression gate watches exactly that number.
func benchCancelLatency(b *testing.B, rows int) {
	db := buildJoinFixture(b, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() {
			_, err := db.QueryContext(ctx, cancelJoinQuery)
			errc <- err
		}()
		time.Sleep(50 * time.Millisecond) // well inside the join kernels
		b.StartTimer()
		cancel()
		err := <-errc
		b.StopTimer()
		if !errors.Is(err, context.Canceled) {
			b.Fatalf("err = %v, want context.Canceled", err)
		}
		b.StartTimer()
	}
}

func BenchmarkCancelLatency1M(b *testing.B)  { benchCancelLatency(b, 1_000_000) }
func BenchmarkCancelLatency10M(b *testing.B) { benchCancelLatency(b, 10_000_000) }

// benchCtxOverhead runs a join to completion; the "plain" variant takes
// the uncancellable fast path (single-chunk plans, no Job attached), the
// "cancellable" variant carries a live context and pays the per-morsel
// checks plus the finer cancellable chunking.
func benchCtxOverhead(b *testing.B, cancellable bool) {
	db := buildJoinFixture(b, 200_000)
	ctx := context.Background()
	var cancel context.CancelFunc
	if cancellable {
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if cancellable {
			_, err = db.QueryContext(ctx, cancelJoinQuery)
		} else {
			_, err = db.Query(cancelJoinQuery)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCtxOverheadPlain(b *testing.B)       { benchCtxOverhead(b, false) }
func BenchmarkCtxOverheadCancellable(b *testing.B) { benchCtxOverhead(b, true) }

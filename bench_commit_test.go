// Group-commit throughput: N concurrent writers against one WAL. The
// serialized write path pays one fsync per commit, so adding writers
// adds fsyncs without adding throughput — the classic single-writer
// durability bottleneck. Group commit lets concurrent committers share
// a fsync: writers enqueue encoded batches, the commit loop drains the
// queue and retires the whole group with one append+sync. The contract
// pinned here: at 4+ writers on a 4+ core machine the grouped path is
// at least 2x the serialized baseline on a fixed workload, and the
// fsyncs/commit metric drops below one.
package sciql_test

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// openCommitNWriters opens a fresh directory-backed database with the
// given commit-queue setting and one table per writer, auto-checkpoints
// off so the loop measures pure commit cost.
func openCommitNWriters(b *testing.B, commitQueue, writers int) *core.DB {
	b.Helper()
	db, err := core.OpenDB(filepath.Join(b.TempDir(), "db"),
		core.OpenOptions{CommitQueue: commitQueue})
	if err != nil {
		b.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		db.MustQuery(fmt.Sprintf("CREATE TABLE t%d (a INT)", w))
	}
	return db
}

// commitRound runs one round of the workload: `writers` goroutines each
// committing `rows` single-row autocommit inserts into their own table.
func commitRound(db *core.DB, writers, rows, round int) error {
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for j := 0; j < rows; j++ {
				if _, err := s.Query(fmt.Sprintf("INSERT INTO t%d VALUES (%d)", w, round*rows+j)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkCommitNWriters measures commit throughput for group commit
// (the default) against the serialized one-fsync-per-commit baseline
// (CommitQueue < 0) at 1, 4 and 8 writers. One op = one commit; the
// fsyncs/commit column is the amortisation the group achieved. The
// speedup-gate sub-benchmark compares the two modes on a fixed workload
// and fails below 2x at 4 writers on machines with 4+ cores.
func BenchmarkCommitNWriters(b *testing.B) {
	modes := []struct {
		name  string
		queue int
	}{
		{"group", 0},
		{"serialized", -1},
	}
	for _, m := range modes {
		for _, writers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("mode=%s/writers=%d", m.name, writers), func(b *testing.B) {
				db := openCommitNWriters(b, m.queue, writers)
				defer db.Close()
				if err := commitRound(db, writers, 1, 0); err != nil { // warm up
					b.Fatal(err)
				}
				commits0, syncs0 := db.CommitStats()
				b.ResetTimer()
				// One op = one commit; each round issues `writers`
				// concurrent single-commit writers, so b.N rounds up to a
				// whole number of rounds (off by < writers commits).
				rounds := (b.N + writers - 1) / writers
				for r := 1; r <= rounds; r++ {
					if err := commitRound(db, writers, 1, r); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				commits1, syncs1 := db.CommitStats()
				dc, ds := commits1-commits0, syncs1-syncs0
				if dc > 0 {
					b.ReportMetric(float64(ds)/float64(dc), "fsyncs/commit")
				}
			})
		}
	}

	b.Run("speedup-gate", func(b *testing.B) {
		const writers, rows = 4, 100
		timedMode := func(queue int) time.Duration {
			db := openCommitNWriters(b, queue, writers)
			defer db.Close()
			if err := commitRound(db, writers, 8, 0); err != nil { // warm up
				b.Fatal(err)
			}
			best := time.Duration(1<<63 - 1)
			for run := 1; run <= 3; run++ {
				start := time.Now()
				err := commitRound(db, writers, rows, run)
				if d := time.Since(start); d < best {
					best = d
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			return best
		}
		serialized := timedMode(-1)
		grouped := timedMode(0)
		ratio := float64(serialized) / float64(grouped)
		cores := runtime.GOMAXPROCS(0)
		b.Logf("%d writers x %d commits: serialized %v, group %v, speedup %.2fx (%d cores)",
			writers, rows, serialized, grouped, ratio, cores)
		if cores >= 4 && ratio < 2 {
			b.Errorf("group commit speedup %.2fx at %d writers on %d cores, want >= 2x", ratio, writers, cores)
		}
	})
}

// Package-level tests exercising the public façade exactly as a downstream
// user would.
package sciql_test

import (
	"strings"
	"testing"

	sciql "repro"
)

func TestFacadeQuickstart(t *testing.T) {
	db := sciql.New()
	if _, err := db.Exec(`CREATE ARRAY matrix (
		x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4],
		v INT DEFAULT 0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`UPDATE matrix SET v = CASE
		WHEN x > y THEN x + y WHEN x < y THEN x - y ELSE 0 END`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT [x], [y], AVG(v) FROM matrix
		GROUP BY matrix[x:x+2][y:y+2]
		HAVING x MOD 2 = 1 AND y MOD 2 = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsArray || len(res.Shape) != 2 {
		t.Fatalf("expected a 2-D array result, got %+v", res.Shape)
	}
	if res.Shape.Cells() != 16 {
		t.Errorf("shape %v", res.Shape)
	}
}

func TestFacadePersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := sciql.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustQuery(`CREATE TABLE notes (id INT, body VARCHAR)`)
	db.MustQuery(`INSERT INTO notes VALUES (1, 'hello')`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := sciql.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res := db2.MustQuery(`SELECT body FROM notes`)
	if res.NumRows() != 1 || res.Value(0, 0).StrVal() != "hello" {
		t.Errorf("persisted data lost: %v", res)
	}
}

func TestFacadeErrorsAreSQLish(t *testing.T) {
	db := sciql.New()
	_, err := db.Query(`SELECT * FROM missing`)
	if err == nil || !strings.Contains(err.Error(), "no such table") {
		t.Errorf("err = %v", err)
	}
	_, err = db.Query(`SELEC 1`)
	if err == nil || !strings.Contains(err.Error(), "parse error") {
		t.Errorf("err = %v", err)
	}
}

func TestFacadeBatchExec(t *testing.T) {
	db := sciql.New()
	results, err := db.Exec(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2);
		SELECT SUM(a) FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[2].Value(0, 0).Int64() != 3 {
		t.Errorf("sum = %v", results[2].Value(0, 0))
	}
}

// WAL benchmarks: the cost of making a small commit durable. The paper's
// engine heritage (MonetDB) assumes commits cost O(delta); before the WAL
// the engine rewrote every BAT file of a dirty object on COMMIT, so a
// single-row insert into a 1M-row directory-backed table paid the full
// storage rewrite. BenchmarkCommitSmallWrite pins the new contract: the
// bytes a commit writes (one fsynced WAL record) must be at least 10x —
// in practice about five orders of magnitude — below what the pre-WAL
// save path wrote for the same statement.
package sciql_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	sciql "repro"
)

// buildCommitBench creates a directory-backed database holding a 1M-row
// table (plus the 1M-cell array it was filled from) and checkpoints it,
// so the benchmark loop starts from a clean segment store.
func buildCommitBench(b *testing.B) (*sciql.DB, string) {
	b.Helper()
	dir := filepath.Join(b.TempDir(), "db")
	db, err := sciql.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	db.SetWALCheckpointBytes(0) // measure pure append cost, no mid-loop folds
	db.MustQuery(`CREATE ARRAY big (i INT DIMENSION[0:1:1000000], v INT DEFAULT 7)`)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	db.MustQuery(`INSERT INTO t SELECT v FROM big`)
	if err := db.Save(); err != nil {
		b.Fatal(err)
	}
	return db, dir
}

// segmentBytes sums the BAT segment files — what the pre-WAL save path
// rewrote on every commit that touched the table.
func segmentBytes(b *testing.B, dir string) int64 {
	b.Helper()
	var total int64
	entries, err := os.ReadDir(filepath.Join(dir, "bats"))
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			b.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

func BenchmarkCommitSmallWrite(b *testing.B) {
	// wal: the shipping path. One single-row autocommit INSERT = one
	// fsynced WAL record; asserts the >=10x write-amplification win over
	// the old full-rewrite save.
	b.Run("wal", func(b *testing.B) {
		db, dir := buildCommitBench(b)
		defer db.Close()
		rewrite := segmentBytes(b, dir)
		walStart := db.WALSize()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.MustQuery(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
		}
		b.StopTimer()
		perOp := float64(db.WALSize()-walStart) / float64(b.N)
		b.ReportMetric(perOp, "walB/op")
		b.ReportMetric(float64(rewrite), "rewriteB")
		if perOp <= 0 {
			b.Fatalf("commits wrote no WAL bytes")
		}
		if ratio := float64(rewrite) / perOp; ratio < 10 {
			b.Fatalf("WAL commit writes %0.f bytes vs %d for the old save path (%.1fx, want >=10x)",
				perOp, rewrite, ratio)
		}
	})
	// rewrite: the pre-WAL durability path, reconstructed — after every
	// insert, fold the (now fully dirty) table back into its segment
	// files, exactly what the old per-COMMIT save did.
	b.Run("rewrite", func(b *testing.B) {
		db, _ := buildCommitBench(b)
		defer db.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.MustQuery(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
			if err := db.Save(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(db.CheckpointBytes())/float64(b.N), "segB/op")
	})
}

// BenchmarkWALRecovery measures reopening a database whose log tail
// holds 1000 committed single-row inserts: the cost a crash adds to the
// next open.
func BenchmarkWALRecovery(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "db")
	db, err := sciql.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	db.SetWALCheckpointBytes(0)
	db.MustQuery(`CREATE TABLE t (a INT)`)
	if err := db.Save(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		db.MustQuery(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	// Abandon without Close: the log keeps its 1000 records. Each
	// iteration recovers a fresh copy of the crash image (Close would
	// otherwise checkpoint the log away and leak the measurement).
	base := dir
	work := filepath.Join(b.TempDir(), "work")
	copyDir := func() {
		os.RemoveAll(work)
		if err := filepath.Walk(base, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			rel, _ := filepath.Rel(base, path)
			if info.IsDir() {
				return os.MkdirAll(filepath.Join(work, rel), 0o755)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(filepath.Join(work, rel), data, 0o644)
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copyDir()
		b.StartTimer()
		db2, err := sciql.Open(work)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if n, _ := db2.MustQuery(`SELECT COUNT(*) FROM t`).Value(0, 0).AsInt(); n != 1000 {
			b.Fatalf("recovered %d rows, want 1000", n)
		}
		db2.Close()
		b.StartTimer()
	}
}

// Gameoflife is the paper's demo Scenario I as a library example: Conway's
// Game of Life with every rule — board creation, seeding, the
// next-generation step, clearing and resizing — expressed as SciQL
// statements. The next-generation query uses a 3x3 structural-grouping
// tile per cell; in plain SQL the same computation needs an eight-way
// self-join (which internal/baseline implements for comparison).
package main

import (
	"fmt"
	"log"

	sciql "repro"
	"repro/internal/scenarios"
)

func main() {
	db := sciql.New()
	life, err := scenarios.NewLife(db, "life", 24, 16)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The entire game logic is this one SciQL statement:")
	fmt.Println(life.StepQuery())
	fmt.Println()

	// Seed a glider plus a blinker, then run.
	seed := append(scenarios.Glider(1, 10), scenarios.Blinker(14, 8)...)
	if err := life.Seed(seed); err != nil {
		log.Fatal(err)
	}

	for gen := 0; gen <= 8; gen++ {
		board, err := life.Render()
		if err != nil {
			log.Fatal(err)
		}
		pop, err := life.Population()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generation %d — population %d\n%s\n", gen, pop, board)
		if gen < 8 {
			if err := life.Step(); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Demonstrate the remaining board-management queries.
	if err := life.Resize(30, 20); err != nil {
		log.Fatal(err)
	}
	fmt.Println("board resized to 30x20 with ALTER ARRAY ... SET RANGE (state preserved)")
	pop, err := life.Population()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population after resize: %d\n", pop)
	if err := life.Clear(); err != nil {
		log.Fatal(err)
	}
	pop, _ = life.Population()
	fmt.Printf("population after clear: %d\n", pop)
}

// Sensorfusion demonstrates the motivation of the paper's §1: a scientific
// information system must "blend measurements with static and derived
// metadata about the instruments and observations" — which needs tables
// and arrays side by side in one query language.
//
// A satellite ground-station scenario: per-sensor time series live in a
// 2-D SciQL array (sensor × time), while the instrument metadata
// (calibration offsets, station names, quality flags) lives in ordinary
// relational tables. Queries mix both freely: calibrated readings join the
// array with the metadata table; window statistics use structural
// grouping; and a quality report groups the result relationally.
package main

import (
	"fmt"
	"log"

	sciql "repro"
)

func main() {
	db := sciql.New()

	exec := func(q string) {
		if _, err := db.Exec(q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}
	query := func(caption, q string) {
		res, err := db.Query(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		fmt.Printf("-- %s\n%s\n%s\n", caption, q, res)
	}

	// The measurement array: 4 sensors x 24 hourly readings.
	exec(`CREATE ARRAY readings (
		sensor INT DIMENSION[0:1:4],
		hour   INT DIMENSION[0:1:24],
		raw    INT DEFAULT 0)`)

	// Synthetic diurnal signal, different per sensor; sensor 2 drops out
	// between hours 9 and 13 (holes via DELETE).
	exec(`UPDATE readings SET raw =
		100 + 10 * sensor
		+ CAST(40 * (hour % 12) / 12 AS INT)
		+ CASE WHEN hour >= 12 THEN 40 - CAST(40 * (hour % 12) / 12 AS INT) ELSE 0 END`)
	exec(`DELETE FROM readings WHERE sensor = 2 AND hour >= 9 AND hour < 13`)

	// Instrument metadata: plain relational tables.
	exec(`CREATE TABLE sensors (id INT, station VARCHAR, offset_mv INT, active BOOLEAN)`)
	exec(`INSERT INTO sensors VALUES
		(0, 'alpha', 5, TRUE),
		(1, 'alpha', -3, TRUE),
		(2, 'beta',  0, TRUE),
		(3, 'beta',  12, FALSE)`)

	// 1. Symbiosis: calibrate the array readings with the table offsets.
	query("calibrated readings (array ⋈ table), hour 6, active sensors only",
		`SELECT s.station, r.sensor, r.raw + s.offset_mv AS calibrated
		 FROM readings r, sensors s
		 WHERE r.sensor = s.id AND s.active = TRUE AND r.hour = 6
		 ORDER BY r.sensor`)

	// 2. Structural grouping: centred 5-hour moving average per sensor
	//    (1x5 tiles; the dropout hours are ignored by AVG, not zero-filled).
	query("5-hour moving average around noon (structural grouping)",
		`SELECT [sensor], [hour], AVG(raw) AS smooth
		 FROM readings
		 GROUP BY readings[sensor][hour-2:hour+3]
		 HAVING hour = 12`)

	// 3. Holes are first-class: the dropout is visible as reduced counts.
	query("readings per sensor (holes from the dropout are not counted)",
		`SELECT sensor, COUNT(raw) AS n, AVG(raw) AS mean
		 FROM readings GROUP BY sensor ORDER BY sensor`)

	// 4. Relational aggregation over a coerced array: station-level report.
	query("station report (array → table → join → group)",
		`SELECT s.station, COUNT(r.raw) AS readings, MAX(r.raw) AS peak
		 FROM readings r JOIN sensors s ON r.sensor = s.id
		 WHERE s.active = TRUE
		 GROUP BY s.station ORDER BY s.station`)

	// 5. Coerce a filtered slab back into an array (afternoon window).
	res, err := db.Query(`SELECT [sensor], [hour], raw FROM readings
		WHERE hour >= 12 AND hour < 18 AND sensor < 2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- afternoon slab as a fresh array: shape %v, %d cells\n",
		res.Shape, res.Shape.Cells())
}

// Quickstart walks through the paper's Figure 1 end to end using the
// public API: array creation, guarded update, positional INSERT/DELETE,
// structural grouping (tiling) and dimension expansion — printing each
// intermediate matrix like the figure does.
package main

import (
	"fmt"
	"log"

	sciql "repro"
)

func show(db *sciql.DB, caption string) {
	res, err := db.Query(`SELECT [x], [y], v FROM matrix`)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := res.Grid()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n%s\n", caption, grid)
}

func main() {
	db := sciql.New()

	// Fig. 1(a): a 4x4 matrix of zeros.
	if _, err := db.Exec(`CREATE ARRAY matrix (
		x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4],
		v INT DEFAULT 0)`); err != nil {
		log.Fatal(err)
	}
	show(db, "Fig. 1(a) — CREATE ARRAY materialises the cells:")

	// Fig. 1(b): dimensions act as bound variables in a guarded update.
	if _, err := db.Exec(`UPDATE matrix SET v = CASE
		WHEN x > y THEN x + y WHEN x < y THEN x - y ELSE 0 END`); err != nil {
		log.Fatal(err)
	}
	show(db, "Fig. 1(b) — guarded UPDATE:")

	// Fig. 1(c): INSERT overwrites cells, DELETE punches holes.
	if _, err := db.Exec(`
		INSERT INTO matrix SELECT [x], [y], x * y FROM matrix WHERE x = y;
		DELETE FROM matrix WHERE x > y;`); err != nil {
		log.Fatal(err)
	}
	show(db, "Fig. 1(c) — INSERT on the diagonal, DELETE above it:")

	// Fig. 1(d,e): structural grouping with 2x2 tiles; HAVING filters the
	// anchor points. Holes and out-of-bounds cells are ignored by AVG.
	res, err := db.Query(`SELECT [x], [y], AVG(v) FROM matrix
		GROUP BY matrix[x:x+2][y:y+2]
		HAVING x MOD 2 = 1 AND y MOD 2 = 1`)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := res.Grid()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 1(e) — 2x2 tiling, AVG per anchor:\n%s\n", grid)

	// The MAL program behind the tiling query (paper Fig. 2 pipeline).
	plan, err := db.Query(`PLAN SELECT [x], [y], AVG(v) FROM matrix
		GROUP BY matrix[x:x+2][y:y+2]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MAL program for the tiling query:\n%s\n", plan.Text)

	// Fig. 1(f): dimension expansion; fresh cells take the default 0.
	if _, err := db.Exec(`
		ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5];
		ALTER ARRAY matrix ALTER DIMENSION y SET RANGE [-1:1:5];`); err != nil {
		log.Fatal(err)
	}
	show(db, "Fig. 1(f) — expanded by one in every direction:")

	// §2 coercions: the same array as a table, and a table as an array.
	tbl, err := db.Query(`SELECT x, y, v FROM matrix WHERE v IS NOT NULL ORDER BY v DESC LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array→table coercion (top 3 cells by value):\n%s\n", tbl)
}

// Example server: starts an in-process sciqld, loads a small array and
// table, and queries them through the HTTP/JSON client — the same three
// endpoints any external program can use.
//
//	go run ./examples/server
package main

import (
	"fmt"
	"log"

	sciql "repro"
	"repro/internal/server"
	"repro/internal/server/client"
)

func main() {
	db := sciql.New()
	srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("sciqld listening on", srv.Addr())

	c := client.New(srv.Addr().String())
	mustExec(c, `CREATE TABLE readings (sensor STRING, v DOUBLE)`)
	mustExec(c, `INSERT INTO readings VALUES ('a', 1.5), ('a', 2.5), ('b', 10.0)`)
	mustExec(c, `CREATE ARRAY m (x INT DIMENSION[0:1:4], y INT DIMENSION[0:1:4], v INT DEFAULT 0)`)
	mustExec(c, `UPDATE m SET v = x * 10 + y`)

	for _, q := range []string{
		`SELECT sensor, AVG(v) FROM readings GROUP BY sensor`,
		`SELECT [x], [y], v FROM m WHERE v > 25`,
	} {
		r, err := c.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("> %s\n%s\n", q, r.Rendered)
	}

	// Transactions live on named server-side sessions.
	if err := c.NewSession(); err != nil {
		log.Fatal(err)
	}
	mustExec(c, `BEGIN; UPDATE readings SET v = 0; ROLLBACK`)
	r, err := c.Query(`SELECT SUM(v) FROM readings`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("> after rollback SUM(v):\n%s\n", r.Rendered)

	h, err := c.Health()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthz: %s, %d queries served\n", h.Status, h.Queries)
}

func mustExec(c *client.Client, q string) {
	if _, err := c.Exec(q); err != nil {
		log.Fatalf("%s: %v", q, err)
	}
}

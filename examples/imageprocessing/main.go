// Imageprocessing is the paper's demo Scenario II: in-database image
// processing with SciQL. Two synthetic scenes stand in for the demo's
// GeoTIFF images (a grey-scale building photograph and a remote-sensing
// earth scene). Each of the twelve demo operations runs as a single SciQL
// query against the image arrays; results are written as PGM files into
// ./out (open them with any image viewer).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	sciql "repro"
	"repro/internal/img"
	"repro/internal/scenarios"
	"repro/internal/vault"
)

func main() {
	outDir := "out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	db := sciql.New()
	v := vault.New(db)

	// Generate and attach the two demo scenes (lazy data-vault ingestion).
	building := img.Building(256, 256)
	remote := img.RemoteSensing(256, 256, 42)
	must(v.AttachImage("building", building))
	must(v.AttachImage("remote", remote))
	for _, name := range v.Attached() {
		if _, err := v.Materialise(name); err != nil {
			log.Fatal(err)
		}
	}
	save(outDir, "building", building)
	save(outDir, "remote", remote)

	// ---- first six thumbnails: the grey-scale building image ----
	run := func(file, caption, query string, exec func() (*img.Image, error)) {
		res, err := exec()
		if err != nil {
			log.Fatalf("%s: %v", caption, err)
		}
		save(outDir, file, res)
		fmt.Printf("%-22s %s\n", caption, query)
	}

	run("building_inverted", "intensity inversion:", scenarios.InvertQuery("building"),
		func() (*img.Image, error) { return scenarios.Invert(db, "building") })
	run("building_edges", "edge detection:", scenarios.EdgeDetectQuery("building"),
		func() (*img.Image, error) { return scenarios.EdgeDetect(db, "building") })
	run("building_smooth", "smoothing:", scenarios.SmoothQuery("building"),
		func() (*img.Image, error) { return scenarios.Smooth(db, "building") })
	run("building_small", "resolution reduction:", scenarios.ReduceQuery("building"),
		func() (*img.Image, error) { return scenarios.Reduce(db, "building") })
	run("building_rotated", "rotation:", scenarios.RotateQuery("building", building.W),
		func() (*img.Image, error) { return scenarios.Rotate(db, "building", building.W) })

	// ---- second six thumbnails: the remote-sensing scene ----
	run("remote_land", "water filtering:", scenarios.FilterWaterQuery("remote", 40),
		func() (*img.Image, error) { return scenarios.FilterWater(db, "remote", 40) })
	run("remote_bright", "brightening:", scenarios.BrightenQuery("remote", 60),
		func() (*img.Image, error) { return scenarios.Brighten(db, "remote", 60) })
	run("remote_zoom", "zoom (array x table):", scenarios.ZoomQuery("remote", 64, 64, 64, 64, 2),
		func() (*img.Image, error) { return scenarios.Zoom(db, "remote", 64, 64, 64, 64, 2) })
	boxes := []scenarios.BBox{{X1: 20, Y1: 20, X2: 90, Y2: 90}, {X1: 150, Y1: 130, X2: 230, Y2: 200}}
	run("remote_areas", "areas of interest:", scenarios.AreasOfInterestQuery("remote"),
		func() (*img.Image, error) { return scenarios.AreasOfInterest(db, "remote", boxes) })

	// Histogram: the array/table symbiosis — GROUP BY on an array yields a
	// table (printed rather than saved).
	hist, err := scenarios.Histogram(db, "remote")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %s\n", "intensity histogram:", scenarios.HistogramQuery("remote"))
	dark, bright := int64(0), int64(0)
	for v, c := range hist {
		if v < 40 {
			dark += c
		} else {
			bright += c
		}
	}
	fmt.Printf("  %d intensity levels; %d dark (water) pixels, %d land pixels\n",
		len(hist), dark, bright)

	fmt.Printf("\nresults written to %s/*.pgm\n", outDir)
}

func save(dir, name string, m *img.Image) {
	if err := m.SavePGM(filepath.Join(dir, name+".pgm")); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

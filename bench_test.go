// Benchmark harness regenerating every figure and scenario of the paper's
// evaluation (it is a demo paper: Fig. 1, Fig. 3, Scenario I, Scenario II,
// plus its two performance claims), and the ablations listed in DESIGN.md.
// EXPERIMENTS.md records the measured numbers next to the paper's
// qualitative claims.
package sciql_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	sciql "repro"
	"repro/internal/baseline"
	"repro/internal/bat"
	"repro/internal/gdk"
	"repro/internal/img"
	"repro/internal/scenarios"
	"repro/internal/shape"
	"repro/internal/types"
	"repro/internal/vault"
)

// ------------------------------------------------------------- Figure 1

// BenchmarkFig1a_CreateArray measures CREATE ARRAY materialisation
// (array.series for the dimensions + array.filler for the attribute).
func BenchmarkFig1a_CreateArray(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			db := sciql.New()
			q := fmt.Sprintf(`CREATE ARRAY m (x INT DIMENSION[0:1:%d], y INT DIMENSION[0:1:%d], v INT DEFAULT 0)`, n, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
				if _, err := db.Query(`DROP ARRAY m`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1b_GuardedUpdate measures the guarded CASE update with
// dimensions as bound variables.
func BenchmarkFig1b_GuardedUpdate(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			db := sciql.New()
			mustExec(b, db, fmt.Sprintf(
				`CREATE ARRAY m (x INT DIMENSION[0:1:%d], y INT DIMENSION[0:1:%d], v INT DEFAULT 0)`, n, n))
			q := `UPDATE m SET v = CASE WHEN x > y THEN x + y WHEN x < y THEN x - y ELSE 0 END`
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1c_InsertDelete measures positional overwrite and hole
// punching.
func BenchmarkFig1c_InsertDelete(b *testing.B) {
	db := sciql.New()
	mustExec(b, db, `CREATE ARRAY m (x INT DIMENSION[0:1:256], y INT DIMENSION[0:1:256], v INT DEFAULT 0)`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`INSERT INTO m SELECT [x], [y], x * y FROM m WHERE x = y`); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Query(`DELETE FROM m WHERE x > y + 250`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1e_Tiling2x2 measures the paper's tiling query.
func BenchmarkFig1e_Tiling2x2(b *testing.B) {
	for _, n := range []int{64, 256, 512} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			db := sciql.New()
			mustExec(b, db, fmt.Sprintf(
				`CREATE ARRAY m (x INT DIMENSION[0:1:%d], y INT DIMENSION[0:1:%d], v INT DEFAULT 0)`, n, n))
			mustExec(b, db, `UPDATE m SET v = x + y`)
			q := `SELECT [x], [y], AVG(v) FROM m GROUP BY m[x:x+2][y:y+2] HAVING x MOD 2 = 1 AND y MOD 2 = 1`
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1f_AlterDimension measures dimension expansion (reshape with
// default fill).
func BenchmarkFig1f_AlterDimension(b *testing.B) {
	db := sciql.New()
	mustExec(b, db, `CREATE ARRAY m (x INT DIMENSION[0:1:256], y INT DIMENSION[0:1:256], v INT DEFAULT 0)`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		grow := fmt.Sprintf(`ALTER ARRAY m ALTER DIMENSION x SET RANGE [%d:1:%d]`, -(i%2 + 1), 256+i%2+1)
		if _, err := db.Query(grow); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------- Figure 3

// BenchmarkFig3_SeriesFiller measures the two MAL primitives of §3
// directly at the kernel level, with the Fig. 3 repetition patterns.
func BenchmarkFig3_SeriesFiller(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x, err := bat.Series(0, 1, int64(n), n, 1)
				if err != nil {
					b.Fatal(err)
				}
				y, err := bat.Series(0, 1, int64(n), 1, n)
				if err != nil {
					b.Fatal(err)
				}
				v, err := bat.Filler(n*n, types.Int(0), types.KindInt)
				if err != nil {
					b.Fatal(err)
				}
				_, _, _ = x, y, v
			}
		})
	}
}

// ---------------------------------------------------------- Scenario I

// benchLifeSizes are the board sizes the Game of Life strategies compete on.
var benchLifeSizes = []int{16, 32, 64}

// BenchmarkScenario1_LifeSciQL: one generation as a single structural-
// grouping query (the paper's approach).
func BenchmarkScenario1_LifeSciQL(b *testing.B) {
	for _, n := range benchLifeSizes {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			db := sciql.New()
			life, err := scenarios.NewLife(db, "life", n, n)
			if err != nil {
				b.Fatal(err)
			}
			if err := life.Seed(scenarios.Glider(1, 1)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := life.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenario1_LifeSQLSelfJoin: the same generation via the
// eight-way relational self-join the paper says SciQL replaces (§4).
func BenchmarkScenario1_LifeSQLSelfJoin(b *testing.B) {
	for _, n := range benchLifeSizes {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			db := sciql.New()
			life, err := baseline.NewSQLLife(db, "life", n, n)
			if err != nil {
				b.Fatal(err)
			}
			if err := life.Seed(scenarios.Glider(1, 1)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := life.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenario1_LifeNative: the plain-Go upper bound.
func BenchmarkScenario1_LifeNative(b *testing.B) {
	for _, n := range benchLifeSizes {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			life := scenarios.NewNativeLife(n, n)
			life.Seed(scenarios.Glider(1, 1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				life.Step()
			}
		})
	}
}

// ---------------------------------------------------------- Scenario II

func benchImageDB(b *testing.B, n int) *sciql.DB {
	b.Helper()
	db := sciql.New()
	if err := vault.LoadImage(db, "img", img.RemoteSensing(n, n, 7)); err != nil {
		b.Fatal(err)
	}
	return db
}

func benchImageQuery(b *testing.B, q string, n int) {
	db := benchImageDB(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

const benchImgSize = 256

// BenchmarkScenario2_Invert measures intensity inversion.
func BenchmarkScenario2_Invert(b *testing.B) {
	benchImageQuery(b, scenarios.InvertQuery("img"), benchImgSize)
}

// BenchmarkScenario2_EdgeDetect measures relative cell addressing.
func BenchmarkScenario2_EdgeDetect(b *testing.B) {
	benchImageQuery(b, scenarios.EdgeDetectQuery("img"), benchImgSize)
}

// BenchmarkScenario2_Smooth measures a 3x3 structural-grouping blur.
func BenchmarkScenario2_Smooth(b *testing.B) {
	benchImageQuery(b, scenarios.SmoothQuery("img"), benchImgSize)
}

// BenchmarkScenario2_Reduce measures resolution reduction.
func BenchmarkScenario2_Reduce(b *testing.B) {
	benchImageQuery(b, scenarios.ReduceQuery("img"), benchImgSize)
}

// BenchmarkScenario2_Rotate measures coordinate permutation.
func BenchmarkScenario2_Rotate(b *testing.B) {
	benchImageQuery(b, scenarios.RotateQuery("img", benchImgSize), benchImgSize)
}

// BenchmarkScenario2_FilterWater measures the thresholding query.
func BenchmarkScenario2_FilterWater(b *testing.B) {
	benchImageQuery(b, scenarios.FilterWaterQuery("img", 40), benchImgSize)
}

// BenchmarkScenario2_Histogram measures value-based grouping on an array.
func BenchmarkScenario2_Histogram(b *testing.B) {
	benchImageQuery(b, scenarios.HistogramQuery("img"), benchImgSize)
}

// BenchmarkScenario2_Brighten measures saturating addition.
func BenchmarkScenario2_Brighten(b *testing.B) {
	benchImageQuery(b, scenarios.BrightenQuery("img", 60), benchImgSize)
}

// BenchmarkScenario2_Zoom measures the array x table replication join.
func BenchmarkScenario2_Zoom(b *testing.B) {
	db := benchImageDB(b, benchImgSize)
	if err := scenarios.EnsureOffsets(db, 2); err != nil {
		b.Fatal(err)
	}
	q := scenarios.ZoomQuery("img", 64, 64, 64, 64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenario2_AreasOfInterest measures the bounding-box table join.
func BenchmarkScenario2_AreasOfInterest(b *testing.B) {
	db := benchImageDB(b, benchImgSize)
	mustExec(b, db, `CREATE TABLE maskt (x1 INT, y1 INT, x2 INT, y2 INT)`)
	mustExec(b, db, `INSERT INTO maskt VALUES (20, 20, 90, 90), (150, 130, 230, 200)`)
	q := scenarios.AreasOfInterestQuery("img")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenario2_NativeInvert is the plain-Go bound for inversion.
func BenchmarkScenario2_NativeInvert(b *testing.B) {
	m := img.RemoteSensing(benchImgSize, benchImgSize, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scenarios.NativeInvert(m)
	}
}

// BenchmarkScenario2_NativeSmooth is the plain-Go bound for the blur.
func BenchmarkScenario2_NativeSmooth(b *testing.B) {
	m := img.RemoteSensing(benchImgSize, benchImgSize, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scenarios.NativeSmooth(m)
	}
}

// ----------------------------------------- Scenario II: arrays vs. BLOBs

// BenchmarkScenario2_RegionArray extracts a 32x32 region through the
// array path: one WHERE over the dimensions.
func BenchmarkScenario2_RegionArray(b *testing.B) {
	db := benchImageDB(b, benchImgSize)
	q := `SELECT [x], [y], v FROM img WHERE x >= 100 AND x < 132 AND y >= 100 AND y < 132`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenario2_RegionBLOB extracts the same region under BLOB
// storage: fetch the whole value, decode, crop client-side.
func BenchmarkScenario2_RegionBLOB(b *testing.B) {
	db := sciql.New()
	bs, err := baseline.NewBlobStore(db)
	if err != nil {
		b.Fatal(err)
	}
	if err := bs.Store("img", img.RemoteSensing(benchImgSize, benchImgSize, 7)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bs.Region("img", 100, 100, 32, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------- ablations

// BenchmarkAblation_TileGeneric vs BenchmarkAblation_TileSAT: the two
// structural-grouping kernels on a large tile, where the summed-area-table
// path should win (DESIGN.md ablation 1).
func BenchmarkAblation_TileGeneric(b *testing.B) {
	benchTileKernel(b, false)
}

// BenchmarkAblation_TileSAT is the summed-area-table counterpart.
func BenchmarkAblation_TileSAT(b *testing.B) {
	benchTileKernel(b, true)
}

func benchTileKernel(b *testing.B, sat bool) {
	const n = 256
	sh := shape.Shape{
		{Name: "x", Start: 0, Step: 1, Stop: n},
		{Name: "y", Start: 0, Step: 1, Stop: n},
	}
	vals := make([]int64, n*n)
	for i := range vals {
		vals[i] = int64(i % 251)
	}
	attr := bat.FromInts(vals)
	for _, ts := range []int{3, 9, 15} {
		b.Run(fmt.Sprintf("tile%dx%d", ts, ts), func(b *testing.B) {
			half := int64(ts / 2)
			tile := []gdk.TileRange{{Lo: -half, Hi: half + 1}, {Lo: -half, Hi: half + 1}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				if sat {
					_, err = gdk.TileAggSAT(gdk.AggSum, attr, sh, tile)
				} else {
					_, err = gdk.TileAgg(gdk.AggSum, attr, sh, tile)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Candidates compares the fused theta-select kernel with
// the generic compare-then-select pipeline (DESIGN.md ablation 2).
func BenchmarkAblation_Candidates(b *testing.B) {
	const n = 1 << 20
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	col := bat.FromInts(vals)
	b.Run("thetaselect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gdk.ThetaSelect(col, nil, types.Int(500), "<"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compare+boolselect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mask, err := gdk.Compare("<", gdk.B(col), gdk.C(types.Int(500), n), nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := gdk.SelectBool(mask, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_ValueVsStructural compares computing non-overlapping
// 2x2 partition sums via value-based grouping on the coerced table
// (GROUP BY x/2, y/2) against structural grouping (DESIGN.md ablation 3).
func BenchmarkAblation_ValueVsStructural(b *testing.B) {
	const n = 256
	db := sciql.New()
	mustExec(b, db, fmt.Sprintf(
		`CREATE ARRAY m (x INT DIMENSION[0:1:%d], y INT DIMENSION[0:1:%d], v INT DEFAULT 1)`, n, n))
	mustExec(b, db, `UPDATE m SET v = x + y`)
	b.Run("value-grouping", func(b *testing.B) {
		q := `SELECT x / 2, y / 2, SUM(v) FROM m GROUP BY x / 2, y / 2`
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("structural-grouping", func(b *testing.B) {
		q := `SELECT [x/2], [y/2], SUM(v) FROM m GROUP BY m[x:x+2][y:y+2] HAVING x MOD 2 = 0 AND y MOD 2 = 0`
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func mustExec(b *testing.B, db *sciql.DB, q string) {
	b.Helper()
	if _, err := db.Query(q); err != nil {
		b.Fatalf("%s: %v", q, err)
	}
}

// ------------------------------------------------- morsel-parallel kernels

// parallelRowCount is the input size of the threads=1 vs threads=N kernel
// comparisons: far above the morsel threshold so the pool engages fully.
const parallelRowCount = 1 << 20

// assertParallelSpeedup times fn at threads=1 and threads=GOMAXPROCS (min
// of several runs) and fails the benchmark when the parallel run is not at
// least 2x faster on machines with 4 or more cores. On smaller machines it
// only reports the ratio.
func assertParallelSpeedup(b *testing.B, label string, fn func() error) {
	b.Helper()
	cores := runtime.GOMAXPROCS(0)
	timed := func(threads int) time.Duration {
		prev := sciql.SetThreads(threads)
		defer sciql.SetThreads(prev)
		if err := fn(); err != nil { // warm up
			b.Fatal(err)
		}
		best := time.Duration(1<<63 - 1)
		for run := 0; run < 5; run++ {
			start := time.Now()
			err := fn()
			if d := time.Since(start); d < best {
				best = d
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		return best
	}
	serial := timed(1)
	parallel := timed(cores)
	ratio := float64(serial) / float64(parallel)
	b.Logf("%s: serial %v, parallel(%d) %v, speedup %.2fx", label, serial, cores, parallel, ratio)
	if cores >= 4 && ratio < 2 {
		b.Errorf("%s: parallel speedup %.2fx at %d cores, want >= 2x", label, ratio, cores)
	}
}

// BenchmarkParallel_Arith compares a 1M-row vectorised addition at
// threads=1 against threads=GOMAXPROCS and asserts the >= 2x speedup on
// machines with at least 4 cores.
func BenchmarkParallel_Arith(b *testing.B) {
	li := make([]int64, parallelRowCount)
	ri := make([]int64, parallelRowCount)
	for i := range li {
		li[i] = int64(i)
		ri[i] = int64(i % 977)
	}
	l, r := bat.FromInts(li), bat.FromInts(ri)
	work := func() error {
		_, err := gdk.Arith("+", gdk.B(l), gdk.B(r), nil)
		return err
	}
	for _, th := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			prev := sciql.SetThreads(th)
			defer sciql.SetThreads(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := work(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	assertParallelSpeedup(b, "Arith 1M", work)
}

// BenchmarkParallel_Join compares a 1M-row probe against a 1024-row build
// side at threads=1 and threads=GOMAXPROCS. The probe path performs no
// per-row allocation (the row hash is an inlined FNV-1a over the typed
// slices), which -benchmem makes visible: allocs/op stays constant while
// rows scale.
func BenchmarkParallel_Join(b *testing.B) {
	lk := make([]int64, parallelRowCount)
	for i := range lk {
		lk[i] = int64(i % 4096)
	}
	rk := make([]int64, 1024)
	for i := range rk {
		rk[i] = int64(i)
	}
	l, r := bat.FromInts(lk), bat.FromInts(rk)
	work := func() error {
		_, _, err := gdk.HashJoin([]*bat.BAT{l}, []*bat.BAT{r}, nil, nil)
		return err
	}
	for _, th := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			prev := sciql.SetThreads(th)
			defer sciql.SetThreads(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := work(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	assertParallelSpeedup(b, "HashJoin 1Mx1K", work)
}

// BenchmarkParallel_SubAggr covers the grouped-aggregate partial-merge
// path: 1M rows into 1024 groups.
func BenchmarkParallel_SubAggr(b *testing.B) {
	vals := make([]int64, parallelRowCount)
	gids := make([]int64, parallelRowCount)
	for i := range vals {
		vals[i] = int64(i % 7919)
		gids[i] = int64(i % 1024)
	}
	v, g := bat.FromInts(vals), bat.FromOIDs(gids)
	work := func() error {
		_, err := gdk.SubAggr(gdk.AggSum, v, g, 1024, nil)
		return err
	}
	for _, th := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			prev := sciql.SetThreads(th)
			defer sciql.SetThreads(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := work(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	assertParallelSpeedup(b, "SubAggr 1M/1K groups", work)
}

// ------------------------------------------ candidate-list execution

// selectiveCols builds the 1M-row columns of the selective-scan
// benchmarks: a and b hold values uniform in [0, 1000) so `a < k` selects
// k/1000 of the rows, v is the payload column a query would materialise.
func selectiveCols(n int) (a, b, v *bat.BAT) {
	ai := make([]int64, n)
	bi := make([]int64, n)
	vf := make([]float64, n)
	for i := range ai {
		ai[i] = int64((i * 2654435761) % 1000)
		bi[i] = int64((i * 40503) % 1000)
		vf[i] = float64(i%7919) * 0.5
	}
	return bat.FromInts(ai), bat.FromInts(bi), bat.FromFloats(vf)
}

// selectivePaths returns the two implementations under comparison for a
// two-conjunct WHERE (`a < k AND b < 500`): the candidate chain
// (theta-select feeding theta-select, no boolean columns) and the
// materializing pipeline the engine used before candidate execution
// (full-length Compare + Compare + And + SelectBool). consume receives the
// final base-position list.
func selectivePaths(a, b *bat.BAT, k int64, consume func(sel *bat.BAT) error) (candFn, matFn func() error) {
	n := a.Len()
	candFn = func() error {
		cand, err := gdk.ThetaSelect(a, nil, types.Int(k), "<")
		if err != nil {
			return err
		}
		cand, err = gdk.ThetaSelect(b, cand, types.Int(500), "<")
		if err != nil {
			return err
		}
		return consume(cand)
	}
	matFn = func() error {
		m1, err := gdk.Compare("<", gdk.B(a), gdk.C(types.Int(k), n), nil)
		if err != nil {
			return err
		}
		m2, err := gdk.Compare("<", gdk.B(b), gdk.C(types.Int(500), n), nil)
		if err != nil {
			return err
		}
		m, err := gdk.And(gdk.B(m1), gdk.B(m2), nil)
		if err != nil {
			return err
		}
		sel, err := gdk.SelectBool(m, nil)
		if err != nil {
			return err
		}
		return consume(sel)
	}
	return candFn, matFn
}

// selectivities of the candidate benchmarks: k/1000 of 1M rows.
var selectiveKs = []struct {
	k     int64
	label string
}{
	{1, "sel=0.1%"},
	{100, "sel=10%"},
}

// runSelective runs both paths as sub-benchmarks (recorded into
// BENCH_candidates.json by bench.sh) and then asserts the candidate path's
// advantage: at 0.1% selectivity it must run >= 2x faster and allocate
// >= 3x fewer bytes than the materializing path; at 10% it must still win
// both. Timing uses min-of-5 like assertParallelSpeedup; bytes use the
// runtime's TotalAlloc delta.
func runSelective(b *testing.B, consume func(sel *bat.BAT) error) {
	a, bc, _ := selectiveCols(parallelRowCount)
	for _, sk := range selectiveKs {
		candFn, matFn := selectivePaths(a, bc, sk.k, consume)
		b.Run("cand/"+sk.label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := candFn(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("mat/"+sk.label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := matFn(); err != nil {
					b.Fatal(err)
				}
			}
		})
		wantSpeed, wantBytes := 1.0, 1.0
		if sk.k == 1 {
			wantSpeed, wantBytes = 2.0, 3.0
		}
		assertCandidateWin(b, sk.label, wantSpeed, wantBytes, candFn, matFn)
	}
}

// assertCandidateWin fails the benchmark when the candidate path does not
// beat the materializing path by the wanted time and allocation factors.
// Allocation (TotalAlloc deltas) is deterministic; timing on shared
// runners is not, so the time gate takes the best ratio across a few
// measurement attempts before declaring a regression.
func assertCandidateWin(b *testing.B, label string, wantSpeed, wantBytes float64, candFn, matFn func() error) {
	b.Helper()
	timed := func(fn func() error) time.Duration {
		if err := fn(); err != nil { // warm up
			b.Fatal(err)
		}
		best := time.Duration(1<<63 - 1)
		for run := 0; run < 5; run++ {
			start := time.Now()
			err := fn()
			if d := time.Since(start); d < best {
				best = d
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		return best
	}
	allocated := func(fn func() error) float64 {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		const runs = 3
		for i := 0; i < runs; i++ {
			if err := fn(); err != nil {
				b.Fatal(err)
			}
		}
		runtime.ReadMemStats(&after)
		return float64(after.TotalAlloc-before.TotalAlloc) / runs
	}
	candB, matB := allocated(candFn), allocated(matFn)
	bytesRatio := matB / candB
	if bytesRatio < wantBytes {
		b.Errorf("%s: candidate path %.2fx fewer bytes, want >= %.1fx", label, bytesRatio, wantBytes)
	}
	speed := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		candNs, matNs := timed(candFn), timed(matFn)
		if s := float64(matNs) / float64(candNs); s > speed {
			speed = s
		}
		if speed >= wantSpeed {
			break
		}
	}
	b.Logf("%s: %.2fx faster, %.2fx fewer bytes (cand %.0fB vs mat %.0fB)",
		label, speed, bytesRatio, candB, matB)
	if speed < wantSpeed {
		b.Errorf("%s: candidate path %.2fx faster, want >= %.1fx", label, speed, wantSpeed)
	}
}

// BenchmarkSelective_Filter: the bare two-conjunct selection at 1M rows.
func BenchmarkSelective_Filter(b *testing.B) {
	runSelective(b, func(sel *bat.BAT) error { return nil })
}

// BenchmarkSelective_FilterProject adds the late materialization step: the
// payload column is gathered once, through the final candidate list.
func BenchmarkSelective_FilterProject(b *testing.B) {
	_, _, v := selectiveCols(parallelRowCount)
	runSelective(b, func(sel *bat.BAT) error {
		_, err := gdk.Project(sel, v)
		return err
	})
}

// BenchmarkSelective_FilterAggr feeds the surviving rows into a global
// SUM: the candidate list flows into the aggregation input directly.
func BenchmarkSelective_FilterAggr(b *testing.B) {
	_, _, v := selectiveCols(parallelRowCount)
	runSelective(b, func(sel *bat.BAT) error {
		gids, err := bat.Filler(sel.Len(), types.Oid(0), types.KindOID)
		if err != nil {
			return err
		}
		_, err = gdk.SubAggr(gdk.AggSum, v, gids, 1, sel)
		return err
	})
}

// BenchmarkParseCache measures the statement cache on the Fig. 1(b)
// guarded-update pattern: the same statement re-executed against a 256x256
// array, the dominant shape in the Life and image scenarios.
func BenchmarkParseCache(b *testing.B) {
	db := sciql.New()
	mustExec(b, db,
		`CREATE ARRAY m (x INT DIMENSION[0:1:256], y INT DIMENSION[0:1:256], v INT DEFAULT 0)`)
	q := `SELECT SUM(v) FROM m WHERE x > 10 AND y > 10`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------- Concurrent sessions

// concurrentReaderDB builds the table the session-concurrency benchmarks
// scan: 20000 rows, small enough that each SELECT stays below the morsel
// threshold — the benchmarks then run with threads=1 so the measured
// speedup comes purely from session-level read concurrency (the snapshot
// engine), not from intra-query kernel parallelism.
func concurrentReaderDB(b *testing.B) *sciql.DB {
	db := sciql.New()
	mustExec(b, db, `CREATE TABLE r (id INT, v INT)`)
	var sb strings.Builder
	for base := 0; base < 20000; base += 1000 {
		sb.Reset()
		sb.WriteString(`INSERT INTO r VALUES `)
		for i := 0; i < 1000; i++ {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "(%d,%d)", base+i, (base+i)*2654435761%9973)
		}
		mustExec(b, db, sb.String())
	}
	return db
}

const concurrentReaderQuery = `SELECT SUM(v), COUNT(*) FROM r WHERE v % 7 = 3`

// runConcurrentReaders fires total queries spread over n concurrent
// sessions. With serialized=true every statement additionally goes
// through one shared mutex — the execution model of the engine before
// snapshot isolation, kept as the benchmark baseline.
func runConcurrentReaders(db *sciql.DB, n, total int, serialized bool) error {
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		errc = make(chan error, n)
	)
	per := total / n
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for i := 0; i < per; i++ {
				if serialized {
					mu.Lock()
				}
				_, err := sess.Query(concurrentReaderQuery)
				if serialized {
					mu.Unlock()
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		return err
	}
	return nil
}

// BenchmarkConcurrentReaders measures aggregate SELECT throughput at
// 1, 4 and 8 concurrent sessions (ns/op is per query across all
// sessions), plus the pre-snapshot serialized baseline at 4 sessions.
// On machines with at least 4 cores it asserts the snapshot engine
// reaches >= 2x the serialized baseline's aggregate throughput.
func BenchmarkConcurrentReaders(b *testing.B) {
	db := concurrentReaderDB(b)
	defer db.Close()
	prev := sciql.SetThreads(1)
	defer sciql.SetThreads(prev)

	for _, sessions := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			b.ReportAllocs()
			total := b.N
			if total < sessions {
				total = sessions
			}
			if err := runConcurrentReaders(db, sessions, total, false); err != nil {
				b.Fatal(err)
			}
		})
	}
	b.Run("sessions=4/serialized", func(b *testing.B) {
		b.ReportAllocs()
		total := b.N
		if total < 4 {
			total = 4
		}
		if err := runConcurrentReaders(db, 4, total, true); err != nil {
			b.Fatal(err)
		}
	})

	// Speedup gate: aggregate throughput of 4 concurrent sessions vs the
	// serialized baseline, best of 5 runs each (as assertParallelSpeedup).
	cores := runtime.GOMAXPROCS(0)
	const total = 400
	timed := func(serialized bool) time.Duration {
		if err := runConcurrentReaders(db, 4, total, serialized); err != nil {
			b.Fatal(err) // warm up
		}
		best := time.Duration(1<<63 - 1)
		for run := 0; run < 5; run++ {
			start := time.Now()
			err := runConcurrentReaders(db, 4, total, serialized)
			if d := time.Since(start); d < best {
				best = d
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		return best
	}
	serial := timed(true)
	concurrent := timed(false)
	ratio := float64(serial) / float64(concurrent)
	b.Logf("4 sessions, %d queries: serialized %v, concurrent %v, speedup %.2fx (%d cores)",
		total, serial, concurrent, ratio, cores)
	if cores >= 4 && ratio < 2 {
		b.Errorf("concurrent read speedup %.2fx at %d cores, want >= 2x over the serialized baseline", ratio, cores)
	}
}
